// Conservative parallel discrete-event simulation (PDES) over a set of
// per-partition Envs.
//
// Horizons. The simulated machine's per-link minimum cross-partition
// message latency lat[q][p] (wire latency plus header serialization,
// uniform by default) is a conservative lookahead: no message executed
// at time s on partition q can be delivered to partition p before
// s + lat[q][p]. Instead of advancing all partitions in lockstep
// windows bounded by the one global minimum, each epoch computes a
// per-partition horizon from CMB-style channel clocks:
//
//	n[q]  = min(q's earliest pending event, q's earliest undrained mail)
//	ec[q] = min(n[q], min over r != q of ec[r] + lat[r][q])   (fixed point)
//	horizon[p] = min over q != p of ec[q] + lat[q][p]
//
// ec[q] is a lower bound on the time of ANY event partition q can ever
// execute from here on — including events caused by relay chains
// through other partitions, which is what the fixed point (a
// Bellman-Ford relaxation over the static link graph; each hop adds a
// positive latency, so it grounds in at most P sweeps) accounts for.
// Every future cross-partition arrival at p therefore lands at or past
// horizon[p], and p may run privately to that edge. The partition
// owning the global minimum always has horizon > n, so the epoch loop
// makes progress whenever any event is pending; with uniform latency L
// every horizon is at least min(n) + L, so the per-link horizons
// strictly subsume the old global window [m, m+L).
//
// Epochs. Workers meet at a coordinator-free sense-reversing barrier
// (an atomic arrival counter plus an epoch counter whose parity is the
// sense). The LAST worker to arrive runs the serial boundary phase —
// error collection, mailbox hand-off, horizon computation, and
// termination detection — then flips the epoch to release the others;
// waiters spin briefly and then park on a per-worker channel, so an
// idle partition costs one channel send per epoch, not a coordinator
// handshake. Stretches where only one partition is active (the
// effectively sequential phases of a program) are executed inline by
// the boundary runner itself, window after window, without releasing
// the barrier at all: a sequential phase pays zero handoffs.
//
// Mail. Cross-partition sends are not scheduled directly on the
// destination heap (that would race with the destination worker). They
// are appended to a per-(src,dst) outbox row — single writer, the
// source worker — and handed to the destination at the boundary by
// swapping row slices (no copying, no per-message allocation; rows
// keep their capacity across epochs). Each destination drains its own
// inbox rows in parallel after release via ScheduleDelivery, which
// orders same-instant deliveries by the schedule-independent key
// (arrival, sent, srcNode, per-source seq) that the sequential loop
// uses for the same events. Pop order therefore does not depend on
// which worker finished first or on when the mail was injected, which
// is what makes the parallel run's statistics bit-identical to the
// sequential loop's.
package sim

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
)

// horizonInf is the "no bound" horizon sentinel. It is far above any
// reachable virtual time but low enough that adding a link latency
// cannot overflow; values at or past it are treated as infinite.
const horizonInf = Time(1) << 62

// mail is one cross-partition message in flight between epochs. The
// (arrival, sent, srcNode, seq) tuple is the delivery key handed to
// ScheduleDelivery at injection — identical to the key the source
// would have used scheduling the delivery directly.
type mail struct {
	arrival Time      // virtual delivery time at the destination
	sent    Time      // virtual time the source executed the send
	srcNode int       // simulated source node
	seq     uint32    // per-source message sequence (caller-assigned)
	afn     func(any) // delivery function (closure-free, as ScheduleArg)
	arg     any
}

// shardSlot is one partition's hot state. Each partition's worker
// writes its own slot (err after a window, outbox rows and mins during
// it, inbox rows while draining); the boundary phase reads and writes
// slots only while every worker is stopped at the barrier. The
// trailing pad keeps neighboring partitions' fields off one cache
// line, so a worker hammering its outbox min never invalidates the
// line another worker's horizon lives on.
type shardSlot struct {
	horizon Time   // this epoch's private execution bound (boundary-written)
	err     error  // last window's error (worker-written, boundary-read)
	posted  bool   // any outbox row appended to since the last boundary
	wins    uint64 // windows executed on this partition (worker-owned)

	outRows [][]mail // outRows[dst]: mail posted this epoch; writer = this partition
	outMin  []Time   // per-row minimum arrival (horizonInf when empty)
	inRows  [][]mail // inRows[src]: mail awaiting drain; writer = this partition (+ boundary)
	inMin   []Time   // per-row minimum arrival of undrained mail

	_pad [64]byte // cache-line isolation between adjacent slots
}

// parkSlot is one worker's barrier wait state, padded apart from its
// neighbors for the same false-sharing reason as shardSlot.
//
//simlint:concurrent -- the park flag and wake channel implement the barrier's spin-then-park wait; every access is confined to awaitEpoch and release, and the six-app differential suite runs them under -race
type parkSlot struct {
	// parked holds the epoch number the worker is parked (or about to
	// park) for, 0 when not parked. Storing the epoch rather than a
	// boolean is what makes the hand-off safe when a released worker
	// laps the releaser: it can finish its next window and re-park for
	// epoch e+2 while the epoch-e+1 wake loop is still scanning, and a
	// boolean flag would let that stale scan claim the new park and
	// wake the worker one epoch early.
	parked atomic.Uint64
	wake   chan struct{} // buffered(1) token from the releasing worker
	_pad   [40]byte
}

// Shards runs P partition Envs under per-link conservative horizons.
// All methods except Post must be called from the goroutine that calls
// Run (or before Run); Post is called by partition workers while their
// window executes, each writing only its own partition's outbox rows.
//
//simlint:concurrent -- the barrier counters and per-worker park slots are the epoch hand-off; all other fields are single-writer by partition or touched only in the serial boundary phase with every worker stopped at the barrier, proven under -race by the differential suites
type Shards struct {
	envs []*Env
	lat  []Time // lat[src*P+dst]: minimum cross-partition latency per link

	slots []shardSlot

	// Boundary-phase scratch, sized once at construction.
	nmin []Time // per-partition earliest pending event or undrained mail
	ec   []Time // earliest-cause fixed point (channel clocks)

	// Sense-reversing barrier: arrivals counts workers into the epoch
	// boundary; the last one runs the serial phase and bumps epoch (the
	// release — its parity is the classic reversing sense). Both sit in
	// padded slots so barrier traffic stays off the data lines.
	arrivals atomic.Int32
	_pad0    [56]byte
	epoch    atomic.Uint64
	_pad1    [56]byte
	park     []parkSlot

	// stop/stopErr are the boundary phase's termination verdict,
	// published before the epoch flip that releases the workers.
	stop    bool
	stopErr error

	// inline: run the whole simulation on the calling goroutine, in
	// partition order, with no barrier and no workers. Chosen at
	// construction when the host cannot run two workers at once
	// (GOMAXPROCS < 2): the barrier would buy no overlap, only latency.
	// The simulated results are identical either way — the delivery-key
	// heap order makes execution independent of epoch structure — so
	// this is a wall-clock decision only, and SetInline allows tests to
	// force either path.
	inline bool

	wdDump func() string // extra diagnostic lines for stall/deadlock errors
}

// NewShards wraps envs (one per partition, all sharing a start time)
// in an epoch scheduler with the given conservative lookahead: the
// minimum virtual latency of any cross-partition message. lookahead
// must be positive, or horizons could not make guaranteed progress.
// Individual links may be raised above it with SetLinkLatency.
//
//simlint:concurrent -- allocates the per-worker park channels; the barrier itself lives in runWorker/awaitEpoch/release
func NewShards(envs []*Env, lookahead Time) *Shards {
	if len(envs) == 0 {
		panic("sim: NewShards with no partitions")
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: NewShards lookahead must be positive, got %d", lookahead))
	}
	p := len(envs)
	s := &Shards{
		envs:  envs,
		lat:   make([]Time, p*p),
		slots: make([]shardSlot, p),
		nmin:  make([]Time, p),
		ec:    make([]Time, p),
		park:  make([]parkSlot, p),
	}
	for i := range s.lat {
		s.lat[i] = lookahead
	}
	for i := range s.slots {
		sl := &s.slots[i]
		sl.outRows = make([][]mail, p)
		sl.outMin = make([]Time, p)
		sl.inRows = make([][]mail, p)
		sl.inMin = make([]Time, p)
		for j := 0; j < p; j++ {
			sl.outMin[j] = horizonInf
			sl.inMin[j] = horizonInf
		}
		s.park[i].wake = make(chan struct{}, 1)
	}
	s.inline = runtime.GOMAXPROCS(0) < 2
	return s
}

// SetInline overrides the automatic inline decision (see the inline
// field). Simulated results do not depend on it.
func (s *Shards) SetInline(v bool) { s.inline = v }

// SetLinkLatency raises (or lowers) the conservative minimum latency
// of the src->dst link. Must be called before Run; l must be positive.
// A link's latency is a promise: no message executed on src at time t
// may arrive on dst before t+l. Lowering a link below the machine's
// real minimum latency is safe for correctness bounds but wasteful;
// raising it above is a lookahead violation the injection check traps.
func (s *Shards) SetLinkLatency(src, dst int, l Time) {
	if l <= 0 {
		panic(fmt.Sprintf("sim: SetLinkLatency must be positive, got %d", l))
	}
	s.lat[src*len(s.envs)+dst] = l
}

// Env returns partition p's environment. Interact with it only between
// Run calls or before Run (e.g. to Spawn processes).
func (s *Shards) Env(p int) *Env { return s.envs[p] }

// Partitions returns the partition count.
func (s *Shards) Partitions() int { return len(s.envs) }

// SetWatchdog arms each partition's stall watchdog (see Env.SetWatchdog)
// and records dump as the extra diagnostic for stall and deadlock
// errors. The per-Env dump stays nil: when a partition stalls, the
// boundary phase appends every partition's blocked-process state, so a
// cross-partition deadlock is diagnosable from any one partition's
// error.
func (s *Shards) SetWatchdog(horizon Time, dump func() string) {
	s.wdDump = dump
	for _, env := range s.envs {
		env.SetWatchdog(horizon, nil)
	}
}

// Post queues a cross-partition delivery: fn(arg) runs on partition
// dstPart's Env at virtual time arrival. Called by partition srcPart's
// worker while its window executes; arrival must be at or past every
// horizon the destination could be running (guaranteed by the link
// latency if sent is inside srcPart's window). sent, srcNode, and seq
// are the delivery key the destination heap orders by — the same key
// the source would pass to ScheduleDelivery for an intra-partition
// send.
//
//simlint:hotpath
func (s *Shards) Post(srcPart, dstPart int, arrival, sent Time, srcNode int, seq uint32, fn func(any), arg any) {
	sl := &s.slots[srcPart]
	//simlint:ignore hotalloc -- outbox rows grow to their high-water mark once; boundary hand-offs swap the slices and drains truncate to length zero, so steady state reuses capacity
	sl.outRows[dstPart] = append(sl.outRows[dstPart], mail{
		arrival: arrival,
		sent:    sent,
		srcNode: srcNode,
		seq:     seq,
		afn:     fn,
		arg:     arg,
	})
	if arrival < sl.outMin[dstPart] {
		sl.outMin[dstPart] = arrival
	}
	sl.posted = true
}

// moveMail hands every non-empty outbox row to its destination's inbox.
// Serial (boundary phase only). The common case is a pointer swap with
// the destination's drained (empty) row — zero copying, both slices
// keep their grown capacity. Only when the destination has not drained
// the previous batch (possible during the boundary's inline
// single-active stretches) are the values appended behind it.
//
//simlint:hotpath
func (s *Shards) moveMail() {
	p := len(s.envs)
	for src := 0; src < p; src++ {
		sl := &s.slots[src]
		if !sl.posted {
			continue
		}
		sl.posted = false
		for dst := 0; dst < p; dst++ {
			row := sl.outRows[dst]
			if len(row) == 0 {
				continue
			}
			dl := &s.slots[dst]
			if len(dl.inRows[src]) == 0 {
				dl.inRows[src], sl.outRows[dst] = row, dl.inRows[src][:0]
			} else {
				//simlint:ignore hotalloc -- append fallback only when the destination sat out an inline stretch without draining; bounded by the same high-water mark as the rows themselves
				dl.inRows[src] = append(dl.inRows[src], row...)
				sl.outRows[dst] = row[:0]
			}
			if sl.outMin[dst] < dl.inMin[src] {
				dl.inMin[src] = sl.outMin[dst]
			}
			sl.outMin[dst] = horizonInf
		}
	}
}

// drainInbox injects partition p's undrained mail into its Env via
// ScheduleDelivery. Runs on p's worker after release (in parallel with
// other partitions' drains — every row here is owned by p), or
// serially in the boundary's single-active stretch. The heap orders
// same-instant deliveries by the (sent, srcNode, seq) key, so the
// injection order across rows is immaterial.
//
//simlint:hotpath
func (s *Shards) drainInbox(p int) {
	sl := &s.slots[p]
	env := s.envs[p]
	for src := range sl.inRows {
		row := sl.inRows[src]
		if len(row) == 0 {
			continue
		}
		for i := range row {
			m := &row[i]
			if m.arrival < env.now {
				panic(fmt.Sprintf("sim: pdes lookahead violated: mail from node %d sent t=%d arrives t=%d behind partition clock t=%d",
					m.srcNode, m.sent, m.arrival, env.now))
			}
			env.ScheduleDelivery(m.arrival, m.sent, m.srcNode, m.seq, m.afn, m.arg)
			m.afn = nil
			m.arg = nil // drop the reference; the heap owns it now
		}
		sl.inRows[src] = row[:0]
		sl.inMin[src] = horizonInf
	}
}

// computeHorizons fills nmin (each partition's earliest pending event
// or undrained mail), runs the channel-clock fixed point, and writes
// every slot's horizon. Returns false when no partition has anything
// pending — the termination condition. Serial (boundary phase only).
//
//simlint:hotpath
func (s *Shards) computeHorizons() bool {
	p := len(s.envs)
	pending := false
	for q := 0; q < p; q++ {
		n := horizonInf
		if t, ok := s.envs[q].NextEventTime(); ok {
			n = t
		}
		for _, m := range s.slots[q].inMin {
			if m < n {
				n = m
			}
		}
		s.nmin[q] = n
		s.ec[q] = n
		if n < horizonInf {
			pending = true
		}
	}
	if !pending {
		return false
	}
	// Earliest-cause fixed point: ec[q] may drop when another partition
	// r could act early and relay into q. Each relaxation adds a
	// positive link latency, so the sweep grounds in at most P rounds.
	for changed := true; changed; {
		changed = false
		for q := 0; q < p; q++ {
			for r := 0; r < p; r++ {
				if r == q || s.ec[r] >= horizonInf {
					continue
				}
				if c := s.ec[r] + s.lat[r*p+q]; c < s.ec[q] {
					s.ec[q] = c
					changed = true
				}
			}
		}
	}
	for i := 0; i < p; i++ {
		h := horizonInf
		for q := 0; q < p; q++ {
			if q == i || s.ec[q] >= horizonInf {
				continue
			}
			if c := s.ec[q] + s.lat[q*p+i]; c < h {
				h = c
			}
		}
		s.slots[i].horizon = h
	}
	return true
}

// fail records the deterministic run verdict for a partition error:
// the lowest-indexed failing partition wins, annotated with every
// partition's state. Serial (boundary phase only).
func (s *Shards) fail(part int, err error) {
	s.stop = true
	s.stopErr = fmt.Errorf("sim: partition %d: %w\n%s", part, err, s.dumpAll())
}

// boundary is the serial epoch-boundary phase, run by the last worker
// to arrive at the barrier while every other worker waits: collect
// window errors (lowest partition wins, a deterministic choice), hand
// mail over, compute horizons, and detect termination. Stretches where
// exactly one partition is active are executed right here, window
// after window, without releasing the barrier — an effectively
// sequential phase pays zero handoffs.
func (s *Shards) boundary() {
	for p := range s.slots {
		if err := s.slots[p].err; err != nil {
			s.fail(p, err)
			return
		}
	}
	s.moveMail()
	for {
		if !s.computeHorizons() {
			if s.totalBlocked() > 0 {
				s.stop, s.stopErr = true, s.deadlockError()
			} else {
				s.stop = true
			}
			return
		}
		active, last := 0, -1
		for p := range s.envs {
			if s.nmin[p] < s.slots[p].horizon {
				active++
				last = p
			}
		}
		if active != 1 {
			// Two or more active partitions: release the barrier and let
			// the workers run the epoch in parallel. (Zero is impossible:
			// the global-minimum owner's horizon always exceeds its next
			// event by at least the smallest inbound link latency.)
			return
		}
		s.drainInbox(last)
		s.slots[last].wins++
		if err := s.envs[last].RunWindow(s.slots[last].horizon); err != nil {
			s.fail(last, err)
			return
		}
		s.moveMail()
	}
}

// runInline drives the whole simulation on the calling goroutine: the
// boundary logic in a loop, with every active partition's window run
// in ascending partition order. Bit-identical to the worker path by
// the delivery-key argument.
func (s *Shards) runInline() error {
	for {
		s.moveMail()
		if !s.computeHorizons() {
			if s.totalBlocked() > 0 {
				return s.deadlockError()
			}
			return nil
		}
		for p, env := range s.envs {
			if s.nmin[p] >= s.slots[p].horizon {
				continue
			}
			s.drainInbox(p)
			s.slots[p].wins++
			if err := env.RunWindow(s.slots[p].horizon); err != nil {
				return fmt.Errorf("sim: partition %d: %w\n%s", p, err, s.dumpAll())
			}
		}
	}
}

// spinIters bounds the barrier's busy-wait before a worker parks on
// its channel. The spin absorbs the common case — all workers reaching
// the barrier within a window's tail — without a kernel transition;
// the later iterations yield the processor so an oversubscribed host
// (more partitions than cores) cannot starve the boundary runner.
const spinIters = 128

// awaitEpoch blocks worker p until the epoch counter moves past cur:
// spin briefly, then park on the worker's wake channel with the
// awaited epoch recorded in the park flag. The releasing worker flips
// the epoch first and then claims exactly the flags tagged with the
// new epoch, so a worker that observes the old epoch after setting its
// flag is guaranteed a wake token (sequentially consistent atomics
// order the flag write before the flip-check on one side and the flip
// before the flag-claim on the other), and a stale wake scan can never
// claim a park armed for a later epoch.
//
//simlint:concurrent -- the spin-then-park wait side of the epoch barrier; the epoch-tagged CAS handshake with release ensures no lost or premature wakeup, exercised under -race by the differential suites
func (s *Shards) awaitEpoch(p int, cur uint64) {
	for i := 0; i < spinIters; i++ {
		if s.epoch.Load() != cur {
			return
		}
		if i >= 32 {
			runtime.Gosched()
		}
	}
	ps := &s.park[p]
	target := cur + 1
	ps.parked.Store(target)
	if s.epoch.Load() != cur {
		// Released between the spin and the flag: either un-park
		// ourselves, or — if the releaser already claimed the flag —
		// consume the token it is committed to sending.
		if ps.parked.CompareAndSwap(target, 0) {
			return
		}
	}
	<-ps.wake
}

// release opens the next epoch: reset the arrival counter, flip the
// epoch (the sense reversal), and hand a token to every worker parked
// for the epoch just opened.
//
//simlint:concurrent -- the release side of the epoch barrier: counter reset, sense flip, and parked-worker wakeups
func (s *Shards) release() {
	s.arrivals.Store(0)
	next := s.epoch.Add(1)
	for i := range s.park {
		if s.park[i].parked.CompareAndSwap(next, 0) {
			s.park[i].wake <- struct{}{}
		}
	}
}

// arrive counts the worker into the barrier and reports whether it was
// the last one in — the one that must run the boundary phase and
// release the rest.
//
//simlint:concurrent -- the arrival side of the epoch barrier; the atomic add's ordering hands every worker's window writes to the boundary runner
func (s *Shards) arrive() bool {
	return int(s.arrivals.Add(1)) == len(s.envs)
}

// runWorker is one partition's epoch loop: meet the barrier (running
// the serial boundary phase if last in), check the run verdict, drain
// inbound mail, execute one window up to the private horizon, repeat.
// Workers never touch another partition's state outside the barrier.
func (s *Shards) runWorker(p int) error {
	cur := uint64(0)
	for {
		if s.arrive() {
			s.boundary()
			s.release()
		} else {
			s.awaitEpoch(p, cur)
		}
		cur++
		if s.stop {
			return s.stopErr
		}
		s.drainInbox(p)
		s.slots[p].wins++
		s.slots[p].err = s.envs[p].RunWindow(s.slots[p].horizon)
	}
}

// Run drives the simulation to completion and returns nil when every
// heap and mailbox drains with no process blocked; a deadlock error
// (with all partitions' blocked-process state) otherwise; or the
// lowest-indexed partition's window error — a deterministic choice —
// annotated with every partition's state. In worker mode the calling
// goroutine doubles as partition 0's worker; Run must not be called
// twice on the same Shards.
//
//simlint:concurrent -- spawns the P-1 partition worker goroutines; they synchronize exclusively through the epoch barrier and exit on its stop verdict before Run returns
func (s *Shards) Run() error {
	if s.inline {
		return s.runInline()
	}
	for i := 1; i < len(s.envs); i++ {
		go func(p int) { _ = s.runWorker(p) }(i)
	}
	return s.runWorker(0)
}

// Windows returns the total window executions summed over partitions
// (idle windows included — a released worker with nothing before its
// horizon still pays the call). Read only after Run returns.
func (s *Shards) Windows() uint64 {
	var n uint64
	for i := range s.slots {
		n += s.slots[i].wins
	}
	return n
}

// Handoffs returns how many barrier releases the run performed — the
// epochs that actually paid a parallel hand-off. Inline stretches and
// inline mode contribute zero. Read only after Run returns.
//
//simlint:concurrent -- reads the barrier's epoch counter after every worker has exited; post-Run there is no concurrent writer
func (s *Shards) Handoffs() uint64 { return s.epoch.Load() }

// totalBlocked sums condition-blocked processes across partitions.
func (s *Shards) totalBlocked() int {
	n := 0
	for _, env := range s.envs {
		n += env.blocked
	}
	return n
}

func (s *Shards) deadlockError() error {
	msg := fmt.Sprintf("sim: deadlock at t=%d: %d process(es) blocked forever across %d partition(s)\n%s",
		s.Now(), s.totalBlocked(), len(s.envs), s.dumpAll())
	return fmt.Errorf("%s", msg)
}

// dumpAll renders every partition's clock and blocked-process state
// (reusing blockedNames), plus the external dump hook if set. Called
// only from the boundary phase or after Run returns, with every worker
// stopped.
func (s *Shards) dumpAll() string {
	var b strings.Builder
	b.WriteString("partition state:")
	for p, env := range s.envs {
		fmt.Fprintf(&b, "\n  partition %d: t=%dns, %d/%d process(es) blocked", p, env.now, env.blocked, env.alive)
		if env.blocked > 0 {
			fmt.Fprintf(&b, ": %s", env.blockedNames())
		}
	}
	if s.wdDump != nil {
		if d := s.wdDump(); d != "" {
			b.WriteString("\n")
			b.WriteString(d)
		}
	}
	return b.String()
}

// Now returns the maximum partition clock: the virtual time the merged
// run has reached. Matches the sequential loop's final Now() because
// window execution never forces a clock past its last executed event.
func (s *Shards) Now() Time {
	max := s.envs[0].now
	for _, env := range s.envs[1:] {
		if env.now > max {
			max = env.now
		}
	}
	return max
}

// Events returns the event-dispatch counters summed across partitions.
func (s *Shards) Events() EventStats {
	var total EventStats
	for _, env := range s.envs {
		st := env.Events()
		total.Dispatches += st.Dispatches
		total.ArgEvents += st.ArgEvents
		total.FnEvents += st.FnEvents
	}
	return total
}

// Shutdown force-terminates every partition's unfinished processes.
// Must be called after Run has returned (the workers exit with the
// boundary phase's stop verdict before Run does); the shards are
// unusable afterwards.
func (s *Shards) Shutdown() {
	for _, env := range s.envs {
		env.Shutdown()
	}
}
