package sim

import (
	"fmt"
	"strings"
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEnv()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if order[i] != i {
			t.Fatalf("same-time events out of issue order at %d: %v", i, order[:i+1])
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEnv()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcessSleep(t *testing.T) {
	e := NewEnv()
	var times []Time
	e.Spawn("sleeper", func(p *Proc) {
		times = append(times, p.Now())
		p.Sleep(100)
		times = append(times, p.Now())
		p.Sleep(50)
		times = append(times, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 100, 150}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestTwoProcessesInterleaveDeterministically(t *testing.T) {
	e := NewEnv()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < 3; i++ {
			trace = append(trace, "a")
			p.Sleep(10)
		}
	})
	e.Spawn("b", func(p *Proc) {
		for i := 0; i < 3; i++ {
			trace = append(trace, "b")
			p.Sleep(10)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSignalWakesWaiters(t *testing.T) {
	e := NewEnv()
	s := NewSignal()
	var woke []Time
	for i := 0; i < 3; i++ {
		e.Spawn("waiter", func(p *Proc) {
			s.Wait(p)
			woke = append(woke, p.Now())
		})
	}
	e.Schedule(500, func() { s.Fire() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woke))
	}
	for _, w := range woke {
		if w != 500 {
			t.Fatalf("waiter woke at %d, want 500", w)
		}
	}
	if !s.Fired() {
		t.Fatal("signal not marked fired")
	}
}

func TestSignalWaitAfterFireReturnsImmediately(t *testing.T) {
	e := NewEnv()
	s := NewSignal()
	s.Fire()
	var at Time = -1
	e.Spawn("late", func(p *Proc) {
		p.Sleep(42)
		s.Wait(p)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 42 {
		t.Fatalf("late waiter resumed at %d, want 42", at)
	}
}

func TestSignalDoubleFirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("double fire did not panic")
		}
	}()
	s := NewSignal()
	s.Fire()
	s.Fire()
}

func TestCounterWaitFor(t *testing.T) {
	e := NewEnv()
	c := NewCounter()
	var doneAt Time = -1
	e.Spawn("recv", func(p *Proc) {
		c.WaitFor(p, 3)
		doneAt = p.Now()
	})
	e.Schedule(10, func() { c.Add(1) })
	e.Schedule(20, func() { c.Add(1) })
	e.Schedule(30, func() { c.Add(1) })
	e.Schedule(40, func() { c.Add(1) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 30 {
		t.Fatalf("counter satisfied at %d, want 30", doneAt)
	}
	if c.Value() != 4 {
		t.Fatalf("counter value %d, want 4", c.Value())
	}
}

func TestCounterSatisfiedBeforeWait(t *testing.T) {
	e := NewEnv()
	c := NewCounter()
	c.Add(5)
	ran := false
	e.Spawn("recv", func(p *Proc) {
		c.WaitFor(p, 5)
		ran = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("waiter never resumed despite satisfied counter")
	}
}

func TestCounterReset(t *testing.T) {
	c := NewCounter()
	c.Add(7)
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("value after reset = %d", c.Value())
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEnv()
	s := NewSignal()
	e.Spawn("stuck", func(p *Proc) {
		s.Wait(p) // never fired
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEnv()
	var fired []Time
	e.Schedule(10, func() { fired = append(fired, 10) })
	e.Schedule(100, func() { fired = append(fired, 100) })
	e.RunUntil(50)
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired = %v, want [10]", fired)
	}
	if e.Now() != 50 {
		t.Fatalf("Now = %d, want 50", e.Now())
	}
	e.RunUntil(200)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want two events", fired)
	}
}

func TestNestedSpawnFromProcess(t *testing.T) {
	e := NewEnv()
	var childAt Time = -1
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(5)
		e.Spawn("child", func(q *Proc) {
			q.Sleep(7)
			childAt = q.Now()
		})
		p.Sleep(100)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 12 {
		t.Fatalf("child finished at %d, want 12", childAt)
	}
}

func TestAfterRelativeScheduling(t *testing.T) {
	e := NewEnv()
	var at Time
	e.Schedule(40, func() {
		e.After(5, func() { at = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 45 {
		t.Fatalf("After fired at %d, want 45", at)
	}
}

func BenchmarkEventDispatch(b *testing.B) {
	e := NewEnv()
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			e.After(1, fn)
		}
	}
	e.After(1, fn)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkProcessContextSwitch(b *testing.B) {
	e := NewEnv()
	e.Spawn("switcher", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestPropertyHeapOrdering(t *testing.T) {
	// Events scheduled in arbitrary order fire in nondecreasing time,
	// ties broken by issue order.
	e := NewEnv()
	type fired struct {
		t   Time
		seq int
	}
	var log []fired
	seq := 0
	times := []Time{50, 10, 90, 10, 50, 0, 70, 10}
	for _, tm := range times {
		tm := tm
		s := seq
		seq++
		e.Schedule(tm, func() { log = append(log, fired{tm, s}) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(log); i++ {
		if log[i].t < log[i-1].t {
			t.Fatalf("time went backwards: %v", log)
		}
		if log[i].t == log[i-1].t && log[i].seq < log[i-1].seq {
			t.Fatalf("tie broken out of issue order: %v", log)
		}
	}
	if len(log) != len(times) {
		t.Fatalf("fired %d of %d", len(log), len(times))
	}
}

func TestWatchdogFiresOnStall(t *testing.T) {
	// A blocked process plus an endless self-rescheduling event chain
	// (the shape of a retransmission loop for a permanently lost
	// message) must trip the watchdog instead of spinning forever.
	e := NewEnv()
	s := NewSignal()
	e.Spawn("stuck", func(p *Proc) { s.Wait(p) })
	var tick func()
	tick = func() { e.After(Millisecond, tick) }
	e.After(Millisecond, tick)
	e.SetWatchdog(10*Millisecond, func() string { return "extra diagnostic" })
	err := e.Run()
	if err == nil {
		t.Fatal("expected watchdog error")
	}
	if !strings.Contains(err.Error(), "watchdog") || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("watchdog error lacks context: %v", err)
	}
	if !strings.Contains(err.Error(), "extra diagnostic") {
		t.Fatalf("watchdog error lacks the dump: %v", err)
	}
}

func TestWatchdogIgnoresSleepers(t *testing.T) {
	// A process sleeping far past the horizon is scheduled, not stalled:
	// the watchdog must stay quiet.
	e := NewEnv()
	e.SetWatchdog(10*Millisecond, nil)
	e.Spawn("sleeper", func(p *Proc) { p.Sleep(Second) })
	if err := e.Run(); err != nil {
		t.Fatalf("watchdog fired on a long sleeper: %v", err)
	}
}

func TestWatchdogProgressSuppressesFiring(t *testing.T) {
	// Event-level progress marks (network deliveries) keep the watchdog
	// quiet while every process is blocked, for as long as they keep
	// coming; once they stop, the watchdog fires one horizon later.
	e := NewEnv()
	s := NewSignal()
	e.Spawn("stuck", func(p *Proc) { s.Wait(p) })
	var tick func()
	tick = func() { e.After(Millisecond, tick) }
	e.After(Millisecond, tick)
	const marks = 100
	for i := 1; i <= marks; i++ {
		e.Schedule(Time(i)*Millisecond, e.Progress)
	}
	e.SetWatchdog(10*Millisecond, nil)
	err := e.Run()
	if err == nil {
		t.Fatal("expected watchdog error after progress stops")
	}
	var last, now Time
	if _, err2 := fmt.Sscanf(err.Error(), "sim: watchdog: no process progress since t=%dns (now t=%dns", &last, &now); err2 != nil {
		t.Fatalf("cannot parse watchdog error %q: %v", err, err2)
	}
	if last < marks*Millisecond {
		t.Fatalf("watchdog fired at lastProgress=%dns, before progress marks stopped (t=%dns)", last, marks*Millisecond)
	}
}

func TestWatchdogDisarmed(t *testing.T) {
	// Horizon 0 disarms: the run ends in plain deadlock detection once
	// the events run out.
	e := NewEnv()
	s := NewSignal()
	e.Spawn("stuck", func(p *Proc) { s.Wait(p) })
	e.SetWatchdog(0, nil)
	e.Schedule(Second, func() {})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want plain deadlock error, got: %v", err)
	}
}
