package sim

import (
	"strings"
	"testing"
)

// A window's upper edge is exclusive: an event scheduled exactly at t1
// belongs to the NEXT window. The conservative argument depends on
// this — mail injected at a boundary may arrive exactly at the edge,
// so the edge must not have executed yet.
func TestRunWindowEdgeExclusive(t *testing.T) {
	e := NewEnv()
	var ran []Time
	e.Schedule(5, func() { ran = append(ran, 5) })
	e.Schedule(10, func() { ran = append(ran, 10) })
	e.Schedule(15, func() { ran = append(ran, 15) })
	if err := e.RunWindow(10); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 1 || ran[0] != 5 {
		t.Fatalf("window [0,10) executed %v, want [5] — edge event leaked in", ran)
	}
	if e.Now() != 5 {
		t.Fatalf("clock forced to %d; must stay at last executed event (5)", e.Now())
	}
	if err := e.RunWindow(20); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 3 || ran[1] != 10 || ran[2] != 15 {
		t.Fatalf("second window executed %v, want [5 10 15]", ran)
	}
}

// Same-timestamp locals preserve issue order even when a window
// boundary falls between scheduling and execution.
func TestRunWindowSameTimestampOrderAcrossBoundary(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(40, func() { order = append(order, i) })
	}
	e.Schedule(3, func() {}) // something for the first window to run
	if err := e.RunWindow(40); err != nil {
		t.Fatal(err)
	}
	if len(order) != 0 {
		t.Fatalf("t=40 events ran inside window [0,40): %v", order)
	}
	if err := e.RunWindow(41); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-time events out of issue order across boundary: %v", order)
		}
	}
}

// ScheduleArg arguments survive windows: an event scheduled in one
// window and executed several windows later still carries its payload
// (nothing recycles or truncates pending heap entries at a boundary).
func TestScheduleArgCrossesWindowsIntact(t *testing.T) {
	e := NewEnv()
	type payload struct{ v int }
	got := 0
	e.ScheduleArg(100, func(a any) { got = a.(*payload).v }, &payload{v: 42})
	for _, t1 := range []Time{20, 40, 60, 80, 100, 101} {
		if err := e.RunWindow(t1); err != nil {
			t.Fatal(err)
		}
	}
	if got != 42 {
		t.Fatalf("payload = %d after crossing five windows, want 42", got)
	}
}

// Same-instant deliveries order by the (sent, src, seq) key — not by
// insertion order — and run after same-instant locals.
func TestScheduleDeliveryKeyOrdering(t *testing.T) {
	e := NewEnv()
	var order []string
	rec := func(a any) { order = append(order, a.(string)) }
	// Insert in scrambled order; all execute at t=50.
	e.ScheduleDelivery(50, 30, 2, 0, rec, "sent30-src2")
	e.ScheduleDelivery(50, 10, 7, 1, rec, "sent10-src7-seq1")
	e.Schedule(50, func() { order = append(order, "local") })
	e.ScheduleDelivery(50, 10, 7, 0, rec, "sent10-src7-seq0")
	e.ScheduleDelivery(50, 10, 3, 5, rec, "sent10-src3")
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"local", "sent10-src3", "sent10-src7-seq0", "sent10-src7-seq1", "sent30-src2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Cross-partition mail posted through Shards is delivered at its
// arrival time on the destination partition, and the run drains both
// heaps to completion — on both window execution paths (coordinator-
// inline and parked workers; simulated results must not depend on the
// choice).
func TestShardsCrossPartitionMail(t *testing.T) {
	for _, inline := range []bool{true, false} {
		name := "workers"
		if inline {
			name = "inline"
		}
		t.Run(name, func(t *testing.T) {
			envs := []*Env{NewEnv(), NewEnv()}
			s := NewShards(envs, 10)
			defer s.Shutdown()
			s.SetInline(inline)
			var deliveredAt Time
			envs[0].Schedule(5, func() {
				// Send from partition 0 at t=5, arriving t=5+10 on partition 1.
				s.Post(0, 1, 15, 5, 0, 0, func(any) { deliveredAt = envs[1].Now() }, nil)
			})
			// Give partition 1 a same-window event so both partitions are
			// active at once and the multi-active path (not just the
			// single-active inline shortcut) is exercised.
			envs[1].Schedule(6, func() {})
			if err := s.Run(); err != nil {
				t.Fatal(err)
			}
			if deliveredAt != 15 {
				t.Fatalf("mail delivered at t=%d on partition 1, want 15", deliveredAt)
			}
			if s.Now() != 15 {
				t.Fatalf("Shards.Now() = %d, want 15", s.Now())
			}
		})
	}
}

// A cross-partition deadlock is reported with EVERY partition's
// blocked-process state, not just the partition that noticed: with one
// process parked on each of two partitions, the error must name both.
func TestShardsDeadlockDumpsAllPartitions(t *testing.T) {
	envs := []*Env{NewEnv(), NewEnv()}
	s := NewShards(envs, 10)
	defer s.Shutdown()
	for p, name := range []string{"left-waiter", "right-waiter"} {
		sig := NewSignal()
		envs[p].Spawn(name, func(pr *Proc) { sig.Wait(pr) })
	}
	err := s.Run()
	if err == nil {
		t.Fatal("two blocked partitions did not deadlock")
	}
	msg := err.Error()
	for _, want := range []string{"deadlock", "partition 0", "partition 1", "left-waiter", "right-waiter"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("deadlock error missing %q:\n%s", want, msg)
		}
	}
}

// The coordinator's dump hook output is appended to deadlock errors.
func TestShardsWatchdogDumpAppended(t *testing.T) {
	envs := []*Env{NewEnv(), NewEnv()}
	s := NewShards(envs, 10)
	defer s.Shutdown()
	s.SetWatchdog(0, func() string { return "external-dump-marker" })
	sig := NewSignal()
	envs[0].Spawn("stuck", func(pr *Proc) { sig.Wait(pr) })
	err := s.Run()
	if err == nil {
		t.Fatal("blocked partition did not deadlock")
	}
	if !strings.Contains(err.Error(), "external-dump-marker") {
		t.Fatalf("deadlock error missing dump hook output:\n%s", err)
	}
}

// A partition-level stall (watchdog horizon exceeded while another
// partition keeps generating events) aborts the run with the stalling
// partition identified and all partitions' state attached.
func TestShardsStallDumpsAllPartitions(t *testing.T) {
	envs := []*Env{NewEnv(), NewEnv()}
	s := NewShards(envs, 10)
	defer s.Shutdown()
	s.SetWatchdog(100, func() string { return "stall-dump-marker" })
	sig := NewSignal()
	envs[1].Spawn("parked", func(pr *Proc) { sig.Wait(pr) })
	// Partition 1 only ever sees timer events; its one process never
	// progresses, so its watchdog must fire.
	var tick func()
	next := Time(0)
	tick = func() {
		next += 50
		if next < 1000 {
			envs[1].Schedule(next, tick)
		}
	}
	envs[1].Schedule(0, tick)
	// Partition 0 idles along on its own timers.
	envs[0].Schedule(500, func() {})
	err := s.Run()
	if err == nil {
		t.Fatal("stalled partition did not abort")
	}
	msg := err.Error()
	for _, want := range []string{"watchdog", "partition 1", "parked", "partition 0", "stall-dump-marker"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("stall error missing %q:\n%s", want, msg)
		}
	}
}
