//simlint:concurrent -- the coroutine scheduler hands control between process goroutines through unbuffered channels with exactly one runnable at any instant; the race detector proves the discipline dynamically

// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives two kinds of activity:
//
//   - Events: plain functions scheduled at a virtual time, executed in the
//     scheduler's goroutine. Protocol message handlers are events.
//   - Processes: goroutine-backed coroutines that can block on virtual time
//     (Sleep) or on conditions (Signal, Counter). Compute threads of the
//     simulated cluster nodes are processes.
//
// Exactly one goroutine is runnable at any instant: the scheduler hands
// control to a process and waits for it to yield before touching the event
// queue again. Simultaneous events are ordered by issue sequence number.
// Together these rules make every simulation bit-reproducible, which the
// test suite exploits by asserting exact message and miss counts.
package sim

import (
	"fmt"
	"sort"
)

// Time is virtual time in nanoseconds.
type Time = int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// event is one pending occurrence. Three mutually exclusive payloads
// avoid per-event closure allocation on the hot paths: proc dispatches
// (Sleep, wake, Spawn) carry the process directly, argument-style
// events (network delivery) carry a shared function plus its argument,
// and everything else uses a plain closure. Exactly one of proc, afn,
// fn is set.
type event struct {
	t    Time
	seq  uint64
	proc *Proc     // dispatch this process
	afn  func(any) // shared function applied to arg
	arg  any
	fn   func()

	// Delivery ordering key (ScheduleDelivery). Message deliveries
	// carry a schedule-independent tie-break — (send time, source id,
	// per-source sequence) — instead of relying on heap insertion
	// order, so two executions that schedule the same deliveries in
	// different orders (the sequential loop vs the partitioned window
	// scheduler) still pop them identically. del marks the event as a
	// delivery; locals sort before deliveries at the same instant.
	del   bool
	dsent Time
	dsrc  int32
	dseq  uint32
}

// eventHeap is an index-free 4-ary min-heap ordered by (t, delivery
// key, seq). The keys are unique, so the heap order is a total order
// and the pop sequence does not depend on heap shape. 4-ary halves the
// tree depth, and the flat value slice avoids container/heap's
// interface boxing (one allocation per Push/Pop in the seed).
type eventHeap []event

func eventLess(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.del != b.del {
		return !a.del // locals before deliveries at the same instant
	}
	if a.del {
		if a.dsent != b.dsent {
			return a.dsent < b.dsent
		}
		if a.dsrc != b.dsrc {
			return a.dsrc < b.dsrc
		}
		if a.dseq != b.dseq {
			return a.dseq < b.dseq
		}
	}
	return a.seq < b.seq
}

func (h eventHeap) peekTime() Time { return h[0].t }
func (h eventHeap) empty() bool    { return len(h) == 0 }

// push inserts one event, sifting up through the 4-ary order.
//
//simlint:hotpath
func (hp *eventHeap) push(e event) {
	//simlint:ignore hotalloc -- the heap grows to its high-water mark once per run; steady state reuses the slice capacity (bench gate holds allocs/op at the PR 3 floor)
	h := append(*hp, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	*hp = h
}

// pop removes the minimum event, sifting the tail down.
//
//simlint:hotpath
func (hp *eventHeap) pop() event {
	h := *hp
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop references so the backing array doesn't pin them
	h = h[:n]
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(&h[j], &h[m]) {
				m = j
			}
		}
		if !eventLess(&h[m], &h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	*hp = h
	return top
}

// Env is a simulation environment: an event queue plus a virtual clock.
// An Env is not safe for concurrent use; all interaction must come from
// the goroutine running Run (for events) or from the currently scheduled
// process (for process operations).
type Env struct {
	now     Time
	events  eventHeap
	seq     uint64
	yield   chan struct{} // process -> scheduler handoff
	blocked int           // processes alive but not schedulable
	alive   int           // processes spawned and not yet finished
	procs   []*Proc       // all spawned processes (diagnostics)

	// Stall watchdog (SetWatchdog): if every live process stays blocked
	// with no dispatch for wdHorizon of virtual time while events keep
	// firing (e.g. endless retransmission timers), Run aborts with a
	// diagnostic instead of spinning forever.
	wdHorizon    Time
	wdDump       func() string
	lastProgress Time

	running  *Proc // process currently dispatched (nil in event context)
	abortErr error // set by Abort; Run returns it after the current event

	stats EventStats // executed-event counters (see Events)
}

// NewEnv returns an empty simulation environment at time zero.
func NewEnv() *Env {
	return &Env{yield: make(chan struct{})}
}

// NewEnvAt returns an empty environment with the clock preset to t.
// Used when a recovered cluster resumes a run mid-flight: the new
// environment continues the crashed run's virtual clock so elapsed
// times include the lost work and the recovery delay.
func NewEnvAt(t Time) *Env {
	e := NewEnv()
	e.now = t
	e.lastProgress = t
	return e
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Schedule runs fn at absolute virtual time t (>= Now) in scheduler context.
//
//simlint:hotpath
func (e *Env) Schedule(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule in the past: t=%d now=%d", t, e.now))
	}
	e.seq++
	e.events.push(event{t: t, seq: e.seq, fn: fn})
}

// ScheduleArg runs fn(arg) at absolute virtual time t. It is the
// allocation-free variant of Schedule for hot paths: fn is typically a
// shared package-level function and arg a pointer, so no closure is
// built per event.
//
//simlint:hotpath
func (e *Env) ScheduleArg(t Time, fn func(any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule in the past: t=%d now=%d", t, e.now))
	}
	e.seq++
	e.events.push(event{t: t, seq: e.seq, afn: fn, arg: arg})
}

// ScheduleDelivery runs fn(arg) at absolute virtual time t, ordered
// among same-instant events by an explicit message-delivery key rather
// than by insertion order: at equal t, locals (Schedule/ScheduleArg/
// process dispatches) run first, then deliveries in (sent, src, dseq)
// order. sent is the virtual time the source issued the send, src its
// node id, and dseq a per-source sequence number — all three are
// properties of the message itself, so the sequential event loop and
// the partitioned window scheduler compute the identical pop order no
// matter when the event was inserted.
//
//simlint:hotpath
func (e *Env) ScheduleDelivery(t, sent Time, src int, dseq uint32, fn func(any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule in the past: t=%d now=%d", t, e.now))
	}
	e.seq++
	e.events.push(event{t: t, seq: e.seq, afn: fn, arg: arg,
		del: true, dsent: sent, dsrc: int32(src), dseq: dseq})
}

// scheduleProc enqueues a dispatch of p at time t without allocating.
//
//simlint:hotpath
func (e *Env) scheduleProc(t Time, p *Proc) {
	e.seq++
	e.events.push(event{t: t, seq: e.seq, proc: p})
}

// exec executes one popped event. This is the event-dispatch loop's
// body: every simulated action in the model funnels through here.
//
//simlint:hotpath
func (e *Env) exec(ev *event) {
	switch {
	case ev.proc != nil:
		e.stats.Dispatches++
		e.dispatch(ev.proc)
	case ev.afn != nil:
		e.stats.ArgEvents++
		ev.afn(ev.arg)
	default:
		e.stats.FnEvents++
		ev.fn()
	}
}

// EventStats counts executed events by dispatch class: process
// dispatches, allocation-free ScheduleArg events, and closure events.
// The counters are always on (three integer increments per event) and
// feed the trace exporter's metadata; they never influence timing.
type EventStats struct {
	Dispatches int64 // process dispatches
	ArgEvents  int64 // ScheduleArg (closure-free) events
	FnEvents   int64 // Schedule (closure) events
}

// Total returns the total number of executed events.
func (s EventStats) Total() int64 { return s.Dispatches + s.ArgEvents + s.FnEvents }

// Events returns the event-dispatch counters accumulated so far.
func (e *Env) Events() EventStats { return e.stats }

// After runs fn after delay d.
func (e *Env) After(d Time, fn func()) { e.Schedule(e.now+d, fn) }

// SetWatchdog arms the stall watchdog: Run returns an error if every
// live process remains blocked on conditions, with no process dispatch,
// for more than horizon of virtual time while events continue to fire.
// (An empty event queue with blocked processes is still reported as a
// deadlock, watchdog or not.) dump, if non-nil, contributes extra
// diagnostic lines to the error. A horizon of 0 disarms the watchdog.
func (e *Env) SetWatchdog(horizon Time, dump func() string) {
	e.wdHorizon = horizon
	e.wdDump = dump
}

// Progress records that the simulation made externally visible forward
// progress (e.g. the network delivered a message to a handler) even
// though no process was dispatched. It keeps the stall watchdog from
// firing while long event-level work — such as draining thousands of
// outstanding protocol transactions — proceeds with every process
// legitimately blocked at a sync point.
func (e *Env) Progress() { e.lastProgress = e.now }

// stalled reports whether the watchdog condition holds: armed, every
// live process condition-blocked (a sleeping or runnable process always
// has a pending dispatch event, so blocked == alive means none exists),
// and no dispatch or Progress mark for over a horizon.
func (e *Env) stalled() bool {
	return e.wdHorizon > 0 && e.alive > 0 && e.blocked == e.alive &&
		e.now-e.lastProgress > e.wdHorizon
}

func (e *Env) stallError() error {
	msg := fmt.Sprintf("sim: watchdog: no process progress since t=%dns (now t=%dns, horizon %dns): %d process(es) blocked: %s",
		e.lastProgress, e.now, e.wdHorizon, e.blocked, e.blockedNames())
	if e.wdDump != nil {
		if d := e.wdDump(); d != "" {
			msg += "\n" + d
		}
	}
	return fmt.Errorf("%s", msg)
}

// Run executes events until the queue is empty. If processes remain
// blocked with no pending events, Run returns an error describing the
// deadlock; if a watchdog is armed and the simulation stalls (events
// fire but no process runs past the horizon), Run returns the
// watchdog's diagnostic.
//
//simlint:hotpath
func (e *Env) Run() error {
	for !e.events.empty() {
		ev := e.events.pop()
		e.now = ev.t
		e.exec(&ev)
		if e.abortErr != nil {
			return e.abortErr
		}
		if e.stalled() {
			return e.stallError()
		}
	}
	if e.blocked > 0 {
		msg := fmt.Sprintf("sim: deadlock at t=%d: %d process(es) blocked forever: %s",
			e.now, e.blocked, e.blockedNames())
		if e.wdDump != nil {
			if d := e.wdDump(); d != "" {
				msg += "\n" + d
			}
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}

// Abort makes Run return err as soon as the current event finishes.
// Pending events are left unexecuted; the environment is expected to be
// abandoned (after Shutdown) once Run returns. Used by the failure
// detector to stop a doomed run the instant a peer is declared dead.
func (e *Env) Abort(err error) {
	if e.abortErr == nil {
		e.abortErr = err
	}
}

// Aborted returns the error passed to Abort, or nil.
func (e *Env) Aborted() error { return e.abortErr }

// Shutdown force-terminates every unfinished process so the environment
// can be abandoned without leaking goroutines. Each parked goroutine is
// poisoned: its next resume panics with a private sentinel that the
// spawn wrapper recovers. Must be called after Run has returned; the
// environment is unusable afterwards.
func (e *Env) Shutdown() {
	for _, p := range e.procs {
		if p.done {
			continue
		}
		p.killed = true
		p.resume <- struct{}{}
		<-e.yield
	}
}

// CrashProc removes p from the simulation: it is never dispatched or
// woken again, and pending dispatch events for it become no-ops. If p
// is the currently running process it unwinds at its next kernel call
// instead. The goroutine itself stays parked until Shutdown reaps it.
func (e *Env) CrashProc(p *Proc) {
	if p == nil || p.done || p.crashed {
		return
	}
	p.crashed = true
	if p == e.running {
		return // accounting settles when it unwinds and yields
	}
	if p.waiting {
		p.waiting = false
		e.blocked--
	}
	e.alive--
}

// RunUntil executes events with time <= t, then sets the clock to t.
func (e *Env) RunUntil(t Time) {
	for !e.events.empty() && e.events.peekTime() <= t {
		ev := e.events.pop()
		e.now = ev.t
		e.exec(&ev)
	}
	if t > e.now {
		e.now = t
	}
}

// RunWindow executes events with time strictly below limit. Windows are
// half-open [start, limit): an event scheduled exactly at the edge
// belongs to the next window, so consecutive windows partition the
// timeline without executing an edge event early or twice. Unlike
// RunUntil the clock is never forced forward — virtual time advances
// only through executed events, so the final Now() of a windowed run
// equals the sequential loop's. Returns the abort error or the stall
// watchdog's diagnostic exactly like Run. Running dry, or having only
// events at or past limit, is not an error: under the window scheduler
// (Shards) deadlock is a global condition decided by the coordinator,
// not by any one partition.
//
//simlint:hotpath
func (e *Env) RunWindow(limit Time) error {
	for !e.events.empty() && e.events.peekTime() < limit {
		ev := e.events.pop()
		e.now = ev.t
		e.exec(&ev)
		if e.abortErr != nil {
			return e.abortErr
		}
		if e.stalled() {
			return e.stallError()
		}
	}
	return nil
}

// NextEventTime returns the time of the earliest pending event and
// whether one exists. Scheduler-context diagnostics and the window
// coordinator only.
func (e *Env) NextEventTime() (Time, bool) {
	if e.events.empty() {
		return 0, false
	}
	return e.events.peekTime(), true
}

// Blocked returns the number of live processes blocked on conditions.
// Scheduler-context diagnostics only.
func (e *Env) Blocked() int { return e.blocked }

func (e *Env) blockedNames() string {
	var names []string
	for _, p := range e.procs {
		if !p.done && p.waiting {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// Proc is a simulated process: a goroutine that runs only when the
// scheduler resumes it, and always returns control by blocking on a
// kernel operation or by finishing.
type Proc struct {
	env     *Env
	name    string
	resume  chan struct{}
	done    bool
	waiting bool // blocked on a condition (not a timer)
	crashed bool // removed by CrashProc; never runs again
	killed  bool // poisoned by Shutdown; next resume unwinds
}

// procKilled is the panic sentinel Shutdown's poison uses to unwind a
// parked process goroutine; the spawn wrapper recovers it.
var procKilled = new(struct{})

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Waiting reports whether the process is blocked on a condition (not a
// timer). Scheduler-context diagnostics only.
func (p *Proc) Waiting() bool { return p.waiting }

// Done reports whether the process has finished. Scheduler-context
// diagnostics only.
func (p *Proc) Done() bool { return p.done }

// Crashed reports whether the process was removed by CrashProc.
func (p *Proc) Crashed() bool { return p.crashed }

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Now returns current virtual time (valid while the process is running).
func (p *Proc) Now() Time { return p.env.now }

// Spawn creates a process that will begin executing body at the current
// virtual time. body runs in its own goroutine but only while scheduled.
func (e *Env) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.procs = append(e.procs, p)
	e.alive++
	go func() {
		defer func() {
			if r := recover(); r != nil && r != procKilled {
				panic(r)
			}
			p.done = true
			e.yield <- struct{}{}
		}()
		<-p.resume
		if p.killed {
			panic(procKilled)
		}
		body(p)
	}()
	e.scheduleProc(e.now, p)
	return p
}

// dispatch hands the scheduler's control to p until p yields or finishes.
// Must be called from scheduler context.
//
//simlint:hotpath
func (e *Env) dispatch(p *Proc) {
	if p.crashed {
		return // stale dispatch event for a crashed process
	}
	if p.done {
		panic("sim: dispatching a finished process: " + p.name)
	}
	e.lastProgress = e.now
	e.running = p
	p.resume <- struct{}{}
	<-e.yield
	e.running = nil
	if p.done {
		e.alive--
	}
}

// yieldToScheduler suspends the calling process until re-dispatched.
// Must be called from p's own goroutine while it is the running process.
func (p *Proc) yieldToScheduler() {
	p.env.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(procKilled)
	}
}

// Sleep advances the process by d virtual nanoseconds.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	if p.crashed {
		panic(procKilled) // crashed while running; unwind here
	}
	e := p.env
	e.scheduleProc(e.now+d, p)
	p.yieldToScheduler()
}

// block suspends the process on an external condition. The waker must
// eventually call wake (via scheduling), or the run ends in deadlock.
func (p *Proc) block() {
	if p.crashed {
		panic(procKilled) // crashed while running; unwind here
	}
	p.waiting = true
	p.env.blocked++
	p.yieldToScheduler()
}

// wake schedules p to resume at the current virtual time.
// Must be called from scheduler context (e.g. inside an event or while
// another process runs).
func (p *Proc) wake() {
	if p.crashed {
		return // wakes aimed at a crashed process are dropped
	}
	if !p.waiting {
		panic("sim: waking a process that is not blocked: " + p.name)
	}
	p.waiting = false
	p.env.blocked--
	p.env.scheduleProc(p.env.now, p)
}

// A Signal is a one-shot level-triggered condition. Waiting on a fired
// signal returns immediately; firing wakes all current waiters. The
// first waiter lives in an inline slot: almost every signal (a miss
// fill, a barrier release) has exactly one, and the common case must
// not allocate a slice.
type Signal struct {
	fired  bool
	waiter *Proc   // first waiter
	more   []*Proc // rare extra waiters
}

// NewSignal returns an unfired signal.
func NewSignal() *Signal { return &Signal{} }

// Reset rearms a fired signal for reuse. Only legal when no waiter is
// pending — i.e. strictly between one fire-and-wake cycle and the
// next, as with a node's barrier-park signal.
func (s *Signal) Reset() {
	if s.waiter != nil || len(s.more) > 0 {
		panic("sim: resetting a signal with pending waiters")
	}
	s.fired = false
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Wait blocks p until the signal fires.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	if s.waiter == nil {
		s.waiter = p
	} else {
		s.more = append(s.more, p)
	}
	p.block()
}

// Fire marks the signal fired and wakes all waiters. Firing twice panics:
// a signal represents the completion of exactly one transaction.
func (s *Signal) Fire() {
	if s.fired {
		panic("sim: signal fired twice")
	}
	s.fired = true
	if s.waiter != nil {
		s.waiter.wake()
		s.waiter = nil
	}
	for _, p := range s.more {
		p.wake()
	}
	s.more = nil
}

// A Counter is a counting semaphore used for "wait until N things have
// arrived" conditions (e.g. the protocol's ready_to_recv). Add may be
// called before or after WaitFor.
type Counter struct {
	have   int64
	need   int64
	waiter *Proc
}

// NewCounter returns a counter at zero.
func NewCounter() *Counter { return &Counter{} }

// Value returns the accumulated count.
func (c *Counter) Value() int64 { return c.have }

// Add increments the count and wakes a waiter whose target is reached.
func (c *Counter) Add(n int64) {
	c.have += n
	if c.waiter != nil && c.have >= c.need {
		w := c.waiter
		c.waiter = nil
		w.wake()
	}
}

// WaitFor blocks p until the counter has reached at least need since the
// counter's creation (or last Reset). Only one process may wait at a time.
func (c *Counter) WaitFor(p *Proc, need int64) {
	if c.have >= need {
		return
	}
	if c.waiter != nil {
		panic("sim: Counter supports a single waiter")
	}
	c.need = need
	c.waiter = p
	p.block()
}

// Reset returns the counter to zero. It panics if a process is waiting.
func (c *Counter) Reset() {
	if c.waiter != nil {
		panic("sim: resetting a Counter with a waiter")
	}
	c.have = 0
}
