// FuzzShardHorizons drives randomized synthetic message-passing
// programs — random partition count, base lookahead, per-link latency
// matrix, seed events, and fanout trees — through the per-link
// horizon engine and demands that every partition's delivery log is
// record-for-record identical to the sequential single-Env reference.
//
// The synthetic program is deterministic by construction: each
// message carries its own PRNG state and remaining depth, so a
// handler's behavior depends only on its payload and arrival time,
// never on execution interleaving. That makes the per-destination
// delivery order the complete observable, and the (arrival, sent,
// srcNode, seq) delivery key is what must make it partition-invariant.
package sim

import (
	"fmt"
	"testing"
)

// fuzzRand is a xorshift64 step: deterministic, allocation-free, and
// independent of math/rand (whose global state is process-shared).
func fuzzRand(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x
}

// fuzzMsg is one synthetic message. rng is the handler's private
// generator state; two distinct messages essentially never share it,
// so (arrival, rng) identifies a delivery in the logs.
type fuzzMsg struct {
	dst   int // destination partition
	rng   uint64
	depth int
}

// fuzzHarness runs one synthetic program over p logical partitions.
// The same harness drives both the partitioned run (sendFn posts
// cross-partition mail through Shards) and the reference run (sendFn
// schedules on the single Env); logs[dst] and seq[src] are each
// written only by the partition that owns them, which is exactly the
// single-writer discipline the engine guarantees.
type fuzzHarness struct {
	p      int
	lat    []Time // lat[src*p+dst]: minimum send latency per link
	seq    []uint32
	logs   [][][2]uint64 // logs[dst]: (arrival, rng) per delivery, in order
	sendFn func(src, dst int, arrival, sent Time, seq uint32, m *fuzzMsg)
	nowFn  func(part int) Time
}

// handle records the delivery and fans out to random destinations.
// Everything here is a pure function of the payload and the arrival
// clock, so the partitioned and reference runs generate identical
// send sets with identical per-source sequence numbers.
func (h *fuzzHarness) handle(a any) {
	m := a.(*fuzzMsg)
	now := h.nowFn(m.dst)
	h.logs[m.dst] = append(h.logs[m.dst], [2]uint64{uint64(now), m.rng})
	if m.depth <= 0 {
		return
	}
	rng := m.rng
	fan := int(fuzzRand(&rng) % 3)
	for i := 0; i < fan; i++ {
		dst := int(fuzzRand(&rng) % uint64(h.p))
		extra := Time(fuzzRand(&rng) % 16)
		child := &fuzzMsg{dst: dst, rng: fuzzRand(&rng), depth: m.depth - 1}
		s := h.seq[m.dst]
		h.seq[m.dst]++
		h.sendFn(m.dst, dst, now+h.lat[m.dst*h.p+dst]+extra, now, s, child)
	}
}

// fuzzProgram is the derived shape of one fuzz input: partition count,
// per-link latencies, and the pre-run seed deliveries.
type fuzzProgram struct {
	p     int
	look  Time
	lat   []Time
	seeds []fuzzMsg // dst + rng + depth, delivered at seedAt with seedKey
	at    []Time
	src   []int
	sq    []uint32
}

func buildFuzzProgram(state uint64) *fuzzProgram {
	if state == 0 {
		state = 0x9e3779b97f4a7c15
	}
	fp := &fuzzProgram{}
	fp.p = 2 + int(fuzzRand(&state)%5) // 2..6 partitions
	fp.look = 1 + Time(fuzzRand(&state)%20)
	fp.lat = make([]Time, fp.p*fp.p)
	for i := range fp.lat {
		fp.lat[i] = fp.look + Time(fuzzRand(&state)%25)
	}
	seq := make([]uint32, fp.p)
	for src := 0; src < fp.p; src++ {
		k := 1 + int(fuzzRand(&state)%2)
		for i := 0; i < k; i++ {
			fp.seeds = append(fp.seeds, fuzzMsg{
				dst:   int(fuzzRand(&state) % uint64(fp.p)),
				rng:   fuzzRand(&state),
				depth: 3,
			})
			fp.at = append(fp.at, Time(fuzzRand(&state)%50))
			fp.src = append(fp.src, src)
			fp.sq = append(fp.sq, seq[src])
			seq[src]++
		}
	}
	return fp
}

// seedSeq returns per-source sequence counters positioned past the
// seed deliveries, so handler sends can never collide with a seed key.
func (fp *fuzzProgram) seedSeq() []uint32 {
	seq := make([]uint32, fp.p)
	for i, s := range fp.src {
		if fp.sq[i] >= seq[s] {
			seq[s] = fp.sq[i] + 1
		}
	}
	return seq
}

func newFuzzLogs(p int) [][][2]uint64 { return make([][][2]uint64, p) }

// runFuzzReference executes the program on one sequential Env: every
// partition's messages share a single heap, merged by delivery key.
func runFuzzReference(t *testing.T, fp *fuzzProgram) ([][][2]uint64, Time) {
	t.Helper()
	env := NewEnv()
	h := &fuzzHarness{p: fp.p, lat: fp.lat, seq: fp.seedSeq(), logs: newFuzzLogs(fp.p)}
	h.nowFn = func(int) Time { return env.Now() }
	h.sendFn = func(src, dst int, arrival, sent Time, seq uint32, m *fuzzMsg) {
		env.ScheduleDelivery(arrival, sent, src, seq, h.handle, m)
	}
	for i := range fp.seeds {
		m := fp.seeds[i]
		env.ScheduleDelivery(fp.at[i], 0, fp.src[i], fp.sq[i], h.handle, &m)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return h.logs, env.Now()
}

// runFuzzShards executes the program over fp.p partition Envs under
// the per-link horizon engine, on the requested execution path.
func runFuzzShards(t *testing.T, fp *fuzzProgram, inline bool) ([][][2]uint64, Time) {
	t.Helper()
	envs := make([]*Env, fp.p)
	for i := range envs {
		envs[i] = NewEnv()
	}
	s := NewShards(envs, fp.look)
	defer s.Shutdown()
	s.SetInline(inline)
	for src := 0; src < fp.p; src++ {
		for dst := 0; dst < fp.p; dst++ {
			if src != dst {
				s.SetLinkLatency(src, dst, fp.lat[src*fp.p+dst])
			}
		}
	}
	h := &fuzzHarness{p: fp.p, lat: fp.lat, seq: fp.seedSeq(), logs: newFuzzLogs(fp.p)}
	h.nowFn = func(part int) Time { return envs[part].Now() }
	h.sendFn = func(src, dst int, arrival, sent Time, seq uint32, m *fuzzMsg) {
		if src == dst {
			envs[dst].ScheduleDelivery(arrival, sent, src, seq, h.handle, m)
		} else {
			s.Post(src, dst, arrival, sent, src, seq, h.handle, m)
		}
	}
	for i := range fp.seeds {
		m := fp.seeds[i]
		envs[m.dst].ScheduleDelivery(fp.at[i], 0, fp.src[i], fp.sq[i], h.handle, &m)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return h.logs, s.Now()
}

func diffFuzzLogs(t *testing.T, mode string, want, got [][][2]uint64) {
	t.Helper()
	for dst := range want {
		if len(got[dst]) != len(want[dst]) {
			t.Fatalf("%s: partition %d delivered %d message(s), reference %d",
				mode, dst, len(got[dst]), len(want[dst]))
		}
		for i := range want[dst] {
			if got[dst][i] != want[dst][i] {
				t.Fatalf("%s: partition %d delivery %d = (t=%d, id=%x), reference (t=%d, id=%x)",
					mode, dst, i, got[dst][i][0], got[dst][i][1], want[dst][i][0], want[dst][i][1])
			}
		}
	}
}

func FuzzShardHorizons(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(0xdeadbeef))
	f.Add(uint64(0x9e3779b97f4a7c15))
	f.Add(uint64(1<<63) | 12345)
	f.Fuzz(func(t *testing.T, seed uint64) {
		fp := buildFuzzProgram(seed)
		want, wantNow := runFuzzReference(t, fp)
		for _, inline := range []bool{true, false} {
			mode := "workers"
			if inline {
				mode = "inline"
			}
			got, gotNow := runFuzzShards(t, fp, inline)
			if gotNow != wantNow {
				t.Fatalf("%s: final clock t=%d, reference t=%d", mode, gotNow, wantNow)
			}
			diffFuzzLogs(t, mode, want, got)
		}
	})
}

// TestShardHorizonsNonUniformLinks pins one asymmetric-latency case as
// a plain unit test (fuzz seeds only run under the fuzz harness): a
// fast link one way and a slow link back must still produce the
// reference delivery order on both execution paths.
func TestShardHorizonsNonUniformLinks(t *testing.T) {
	for _, seed := range []uint64{7, 99, 0xabcdef} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fp := buildFuzzProgram(seed)
			want, wantNow := runFuzzReference(t, fp)
			for _, inline := range []bool{true, false} {
				mode := "workers"
				if inline {
					mode = "inline"
				}
				got, gotNow := runFuzzShards(t, fp, inline)
				if gotNow != wantNow {
					t.Fatalf("%s: final clock t=%d, reference t=%d", mode, gotNow, wantNow)
				}
				diffFuzzLogs(t, mode, want, got)
			}
		})
	}
}
