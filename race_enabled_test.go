//go:build race

package hpfdsm_test

// raceDetectorEnabled gates the heaviest differential matrices down to
// representative subsets when the race detector is on: instrumentation
// slows the 64-node runs roughly an order of magnitude, and the full
// matrices already run race-free in `go test ./...` and the CI scale
// job. The race detector's actual concern — the sim kernel's goroutine
// handoffs and the PDES window coordinator — is still exercised by the
// subset that remains.
const raceDetectorEnabled = true
