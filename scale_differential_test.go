// Scale differential tests: the combining-tree topology may only
// change how messages are routed, never what the machine computes. At
// 64 nodes — 8x the paper's machine, where the tree actually earns its
// keep — every application at every optimization level must produce
// final arrays, scalars, and reduction journals bit-identical to the
// flat protocol's.
//
// The invariants are chosen from what topology independence actually
// guarantees: the VALUES the machine computes. Final arrays, every
// scalar, and the whole reduction journal — the one place a topology
// change could leak into the computation, since a different
// combination order shifts low mantissa bits — must match bit-for-bit.
// Timing-derived statistics are deliberately NOT compared flat vs
// tree: the tree changes when invalidations land relative to each
// node's accesses, so a load may find a still-valid copy in one
// topology and miss in the other (returning the same bytes either
// way), and miss counts, message counts, elapsed time, and wire bytes
// all legitimately shift with them.
//
// The tree runs must also be engine-independent: a 4-partition
// conservative-PDES run of the tree topology is compared against the
// sequential tree run on every observable, exactly as the flat PDES
// differential does — elapsed time, every per-node counter, every
// array word.
package hpfdsm_test

import (
	"math"
	"testing"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/runtime"
)

const scaleDiffNodes = 64

// runScaleTopo executes one app at scaleDiffNodes under the given
// topology and partition count.
func runScaleTopo(t *testing.T, a *apps.App, opt compiler.Level, topo config.Topology, parts int) *runtime.Result {
	t.Helper()
	prog, err := a.Program(a.ScaledParams)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Run(prog, runtime.Options{
		Machine:    config.Default().WithNodes(scaleDiffNodes).WithTopology(topo),
		Opt:        opt,
		Backend:    runtime.SharedMemory,
		Partitions: parts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func compareArraysBitExact(t *testing.T, a *apps.App, want, got *runtime.Result, label string) {
	t.Helper()
	for _, name := range a.CheckArrays {
		w, g := want.ArrayData(name), got.ArrayData(name)
		if len(w) != len(g) {
			t.Fatalf("%s: array %s length %d vs %d", label, name, len(g), len(w))
		}
		for i := range w {
			if math.Float64bits(w[i]) != math.Float64bits(g[i]) {
				t.Fatalf("%s: array %s[%d] = %x, want %x (data words must be bit-identical)",
					label, name, i, math.Float64bits(g[i]), math.Float64bits(w[i]))
			}
		}
	}
}

func TestScaleDifferentialFlatVsTree(t *testing.T) {
	levels := []compiler.Level{compiler.OptNone, compiler.OptBulk, compiler.OptRTElim}
	if raceDetectorEnabled {
		// Instrumented 64-node runs are ~10x slower; one level keeps the
		// root package inside the default test timeout. The full matrix
		// runs race-free and in the CI scale job.
		levels = levels[len(levels)-1:]
	}
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, opt := range levels {
				opt := opt
				t.Run(opt.String(), func(t *testing.T) {
					flat := runScaleTopo(t, a, opt, config.Flat, 1)
					tree := runScaleTopo(t, a, opt, config.TreeTopo, 1)
					compareArraysBitExact(t, a, flat, tree, "tree vs flat")
					fj, tj := flat.ReduceJournal(), tree.ReduceJournal()
					if len(fj) != len(tj) {
						t.Fatalf("reduction journal: %d entries under tree, %d flat", len(tj), len(fj))
					}
					for i := range fj {
						if math.Float64bits(fj[i]) != math.Float64bits(tj[i]) {
							t.Fatalf("reduction %d = %x under tree, %x flat (canonical fold must be topology-independent)",
								i, math.Float64bits(tj[i]), math.Float64bits(fj[i]))
						}
					}
					for name, fv := range flat.Scalars {
						tv, ok := tree.Scalars[name]
						if !ok {
							t.Fatalf("scalar %s missing under tree", name)
						}
						if math.Float64bits(fv) != math.Float64bits(tv) {
							t.Errorf("scalar %s = %x under tree, %x flat", name, math.Float64bits(tv), math.Float64bits(fv))
						}
					}
				})
			}
		})
	}
}

func TestScaleTreePDESDifferential(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		if raceDetectorEnabled && a.Name != "jacobi" && a.Name != "cg" {
			// Under the race detector keep the cheapest app plus the one
			// whose reductions feed its arrays; the window coordinator's
			// worker handoffs are identical across apps.
			continue
		}
		t.Run(a.Name, func(t *testing.T) {
			seq := runScaleTopo(t, a, compiler.OptRTElim, config.TreeTopo, 1)
			par := runScaleTopo(t, a, compiler.OptRTElim, config.TreeTopo, 4)
			if par.Elapsed != seq.Elapsed {
				t.Errorf("elapsed %dns under PDES, %dns sequential", par.Elapsed, seq.Elapsed)
			}
			if len(par.Stats.Nodes) != len(seq.Stats.Nodes) {
				t.Fatalf("%d stat nodes under PDES, %d sequential", len(par.Stats.Nodes), len(seq.Stats.Nodes))
			}
			for i := range seq.Stats.Nodes {
				diffNodeStats(t, i, &seq.Stats.Nodes[i], &par.Stats.Nodes[i])
			}
			compareArraysBitExact(t, a, seq, par, "pdes-4 vs sequential (tree)")
		})
	}
}
