// Crash-recovery differential tests: every application, at every
// optimization level, with K=1 and K=2 crash-stop node failures
// injected at distinct barrier epochs, must produce final arrays
// bit-identical to the fault-free run of the same configuration. The
// failure path — detection, barrier-consistent rollback, checkpoint
// restore on a replacement node, and ghost replay up to the checkpoint
// epoch — must be completely invisible in the data, with the
// barrier-instant coherence audit armed the whole way.
package hpfdsm_test

import (
	"math"
	"testing"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/runtime"
)

func TestCrashRecoveryDifferential(t *testing.T) {
	levels := []compiler.Level{compiler.OptNone, compiler.OptBulk, compiler.OptRTElim, compiler.OptPRE}
	grids := []struct {
		name    string
		crashes []config.CrashSpec
	}{
		{"k1", []config.CrashSpec{{Node: 2, Epoch: 3}}},
		{"k2", []config.CrashSpec{{Node: 2, Epoch: 3}, {Node: 1, Epoch: 6}}},
	}
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			prog, err := a.Program(a.ScaledParams)
			if err != nil {
				t.Fatal(err)
			}
			for _, opt := range levels {
				opt := opt
				t.Run(opt.String(), func(t *testing.T) {
					ref, err := runtime.Run(prog, runtime.Options{
						Machine: config.Default(), Opt: opt, Check: true})
					if err != nil {
						t.Fatal(err)
					}
					want := map[string][]float64{}
					for _, name := range a.CheckArrays {
						want[name] = ref.ArrayData(name)
					}
					for _, g := range grids {
						g := g
						t.Run(g.name, func(t *testing.T) {
							mc := config.Default().WithFaults(config.Faults{Crashes: g.crashes})
							res, err := runtime.Run(prog, runtime.Options{
								Machine: mc, Opt: opt, Check: true})
							if err != nil {
								t.Fatal(err)
							}
							if int(res.Recoveries) != len(g.crashes) {
								t.Fatalf("%d recoveries for %d configured crash(es)",
									res.Recoveries, len(g.crashes))
							}
							if res.BarrierChecks == 0 {
								t.Fatal("coherence audits did not run")
							}
							for _, name := range a.CheckArrays {
								got := res.ArrayData(name)
								for i := range want[name] {
									if got[i] != want[name][i] {
										t.Fatalf("array %s[%d] = %x after %s recovery, fault-free %x (must be bit-identical)",
											name, i, math.Float64bits(got[i]), g.name,
											math.Float64bits(want[name][i]))
									}
								}
							}
						})
					}
				})
			}
		})
	}
}
