// Command simlint runs the repository's own static-analysis suite —
// the determinism and hot-path invariants of internal/simlint — over
// the module source:
//
//	go run ./cmd/simlint ./...
//
// It loads every matched package with full type information (stdlib
// go/types through `go list -export`; no third-party dependencies),
// applies the registered analyzers (maporder, wallclock, freelist,
// hotalloc, goroutine), and prints each unsuppressed finding with
// file:line provenance followed by the tracked-suppression summary.
// Exit status: 0 clean, 1 on any unsuppressed finding, 2 on a load
// failure.
package main

import (
	"os"

	"hpfdsm/internal/simlint"
)

func main() {
	os.Exit(simlint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
