// Command paperbench regenerates the paper's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	paperbench [-exp all|fig1|table1|table2|fig3|table3|fig4|pre|blocksize|scale]
//	           [-size bench|paper|scaled] [-nodes 8] [-v]
//
// Absolute times come from the simulation's 1996-class machine model;
// the paper's *shapes* (who wins, by what factor, where the weak cases
// are) are the reproduction target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	goruntime "runtime"

	"hpfdsm/internal/bench"
	"hpfdsm/internal/profiling"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig1, table1, table2, fig3, table3, fig4, pre, blocksize, prefetch, consistency, distribution, irregular, network, faults, agg, scale, pdes")
	size := flag.String("size", "bench", "problem sizes: bench, paper, scaled")
	nodes := flag.Int("nodes", 8, "cluster size for suite experiments")
	verbose := flag.Bool("v", false, "log each run")
	workers := flag.Int("j", goruntime.GOMAXPROCS(0), "max concurrent simulations in sweeps")
	pdes := flag.Int("pdes", 1, "partition each simulation across this many OS threads (conservative PDES; 1 = sequential, statistics bit-identical either way)")
	benchOut := flag.String("bench", "", "run the short regression suite and write BENCH json to this file (skips -exp)")
	benchBase := flag.String("bench-baseline", "", "with -bench: compare against this BENCH json; exit 1 on >2x ns/op regression or sim-ms drift")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	traceOut := flag.String("trace-out", "", "with -exp fig1: write the microbenchmark's causal protocol trace (Chrome trace-event JSON) to this file")
	flag.Parse()

	if *workers < 1 {
		*workers = 1
	}
	bench.SuiteWorkers = *workers
	if *pdes > 1 {
		bench.Partitions = *pdes
	}

	stopProf, err := profiling.Start(*cpuProfile, *memProfile, *traceFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	exitCode := 0
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "profiling:", err)
			if exitCode == 0 {
				exitCode = 1
			}
		}
		os.Exit(exitCode)
	}()

	if *benchOut != "" {
		exitCode = runRegression(*benchOut, *benchBase)
		return
	}

	var sizing bench.Sizing
	switch *size {
	case "bench":
		sizing = bench.Bench
	case "paper":
		sizing = bench.Paper
		fmt.Fprintln(os.Stderr, "note: paper sizes simulate the full Table 2 problems; expect long runs")
	case "scaled":
		sizing = bench.Scaled
	default:
		fmt.Fprintf(os.Stderr, "unknown -size %q\n", *size)
		os.Exit(2)
	}

	var log io.Writer
	if *verbose {
		log = os.Stderr
	}

	needSuite := map[string]bool{"all": true, "fig3": true, "table3": true, "fig4": true, "pre": true}
	var suite *bench.SuiteResults
	if needSuite[*exp] {
		var err error
		suite, err = bench.RunSuite(sizing, *nodes, log)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}

	show := func(name, out string) {
		fmt.Println(out)
	}
	run := func(name string) {
		switch name {
		case "fig1":
			show(name, bench.Fig1())
			if *traceOut != "" {
				f, err := os.Create(*traceOut)
				if err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
					os.Exit(1)
				}
				tr := bench.Fig1Trace(10)
				if err := tr.WriteChrome(f); err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
					os.Exit(1)
				}
				if err := f.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s (open in https://ui.perfetto.dev)\n", *traceOut)
			}
		case "table1":
			show(name, bench.Table1())
		case "table2":
			show(name, bench.Table2(sizing))
		case "fig3":
			show(name, bench.Fig3(suite))
		case "table3":
			show(name, bench.Table3(suite))
		case "fig4":
			show(name, bench.Fig4(suite))
		case "pre":
			show(name, bench.PRE(suite))
		case "blocksize":
			out, err := bench.BlockSize(sizing)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			show(name, out)
		case "prefetch":
			out, err := bench.Prefetch(sizing)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			show(name, out)
		case "consistency":
			out, err := bench.Consistency(sizing)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			show(name, out)
		case "distribution":
			out, err := bench.Distribution(sizing)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			show(name, out)
		case "network":
			out, err := bench.Network(sizing)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			show(name, out)
		case "irregular":
			out, err := bench.Irregular(sizing)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			show(name, out)
		case "faults":
			out, err := bench.Faults(sizing)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			show(name, out)
		case "agg":
			out, err := bench.Agg(sizing)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			show(name, out)
		case "scale":
			out, err := bench.Scale(sizing, *pdes)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			show(name, out)
		case "pdes":
			out, err := bench.PDES(sizing)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			show(name, out)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	if *exp == "all" {
		for _, e := range []string{"table1", "fig1", "table2", "fig3", "table3", "fig4", "pre", "blocksize", "prefetch", "consistency", "distribution", "irregular", "network", "faults", "agg"} {
			run(e)
		}
		return
	}
	run(*exp)
}

// runRegression runs the short benchmark suite, writes the BENCH json,
// and (optionally) gates against a committed baseline. Returns the
// process exit code.
func runRegression(outFile, baseFile string) int {
	rep := bench.RunRegression(os.Stderr)
	f, err := os.Create(outFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", outFile, len(rep.Entries))
	if baseFile == "" {
		return 0
	}
	bf, err := os.Open(baseFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	base, err := bench.ReadReport(bf)
	bf.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	bad, notes := bench.CompareWithNotes(base, rep, 2.0)
	for _, n := range notes {
		fmt.Fprintln(os.Stderr, "note: "+n)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "benchmark regression vs %s:\n", baseFile)
		for _, v := range bad {
			fmt.Fprintln(os.Stderr, "  "+v)
		}
		return 1
	}
	fmt.Printf("no regression vs %s\n", baseFile)
	return 0
}
