// Command hpfc is the compiler driver: it parses a mini-HPF program
// (or one of the built-in applications), runs the communication
// analysis, and dumps what the paper's Section 4 computes — the work
// partition, the non-owner read/write rules per parallel loop, and the
// instantiated communication schedules with their block-aligned
// (shmem_limits) interiors and leftover edge bytes.
//
// With -lint it instead runs the static incoherence-safety verifier
// (internal/analysis) over every optimization level and exits non-zero
// on any contract or race error.
//
// Examples:
//
//	hpfc -app jacobi -nodes 8
//	hpfc -app lu -lint
//	hpfc -file prog.hpf -sched
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hpfdsm/internal/analysis"
	"hpfdsm/internal/apps"
	"hpfdsm/internal/bench"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/ir"
	"hpfdsm/internal/lang"
	"hpfdsm/internal/sections"
)

func main() {
	app := flag.String("app", "", "application name")
	file := flag.String("file", "", "mini-HPF source file")
	nodes := flag.Int("nodes", 8, "processor count")
	blockSize := flag.Int("block", 128, "coherence block size")
	sched := flag.Bool("sched", true, "print instantiated schedules")
	lint := flag.Bool("lint", false, "run the static incoherence-safety verifier over every optimization level and exit non-zero on errors")
	calls := flag.Bool("calls", false, "print the run-time call sequence (Figure 2) each node executes per loop")
	printSrc := flag.Bool("print", false, "pretty-print the program as canonical mini-HPF source and exit")
	node := flag.Int("node", 0, "node whose calls to print with -calls")
	flag.Parse()

	var prog *ir.Program
	var err error
	switch {
	case *app != "":
		a, err2 := apps.ByName(*app)
		if err2 != nil {
			fail(err2)
		}
		prog, err = a.Program(bench.ParamsFor(a, bench.Scaled))
	case *file != "":
		src, err2 := os.ReadFile(*file)
		if err2 != nil {
			fail(err2)
		}
		prog, err = lang.Parse(string(src))
	default:
		fail(fmt.Errorf("one of -app or -file is required"))
	}
	if err != nil {
		fail(err)
	}

	if *printSrc {
		fmt.Print(lang.Print(prog))
		return
	}
	mc := config.Default().WithNodes(*nodes).WithBlockSize(*blockSize)
	if *lint {
		rep, err := analysis.Verify(prog, mc, analysis.Levels()...)
		if err != nil {
			fail(err)
		}
		fmt.Print(rep)
		if rep.HasErrors() {
			os.Exit(1)
		}
		return
	}
	layouts := map[*ir.Array]sections.Layout{}
	base := 0
	for _, arr := range prog.Arrays {
		layouts[arr] = sections.Layout{Base: base, Extents: arr.Extents, ElemSize: 8}
		sz := arr.Elems() * 8
		base += (sz + mc.PageSize - 1) / mc.PageSize * mc.PageSize
	}
	an, err := compiler.New(prog, *nodes, layouts, *blockSize)
	if err != nil {
		fail(err)
	}

	fmt.Printf("program %s on %d processors, %dB blocks\n\n", prog.Name, *nodes, *blockSize)
	fmt.Println("arrays:")
	for _, arr := range prog.Arrays {
		d := an.Dist(arr)
		fmt.Printf("  %-10s %v  (chunk %d, %d bytes)\n", arr.Name, arr, d.ChunkSize(), arr.Elems()*8)
	}
	fmt.Println()

	env := map[string]int{}
	for k, v := range prog.Params {
		env[k] = v
	}
	if *calls {
		fmt.Printf("run-time calls executed by node %d (optimization level: bulk):\n\n", *node)
		dumpCalls(an, prog.Body, env, *node, 0)
		return
	}
	dumpStmts(an, prog.Body, env, *sched, 0)
}

// dumpCalls prints the Section 4.2 call sequence a node would execute
// around each loop at the bulk optimization level (the full sequence,
// before run-time elimination prunes it).
func dumpCalls(an *compiler.Analysis, body []ir.Stmt, env map[string]int, node, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range body {
		switch st := s.(type) {
		case *ir.Block:
			dumpCalls(an, st.Body, env, node, depth)
		case *ir.SeqLoop:
			lo := st.Lo.Eval(env)
			fmt.Printf("%sDO %s = %v, %v  (calls shown for %s=%d)\n", ind, st.Var, st.Lo, st.Hi, st.Var, lo)
			env[st.Var] = lo
			dumpCalls(an, st.Body, env, node, depth+1)
			delete(env, st.Var)
		case *ir.ParLoop:
			rule := an.LoopRuleOf(st)
			sched := an.Schedule(st, rule, env)
			fmt.Printf("%s%s:\n", ind, st.Label)
			emitted := false
			say := func(format string, args ...any) {
				fmt.Printf(ind+"  "+format+"\n", args...)
				emitted = true
			}
			var out, in, take, flushIn int
			for _, t := range sched.Reads {
				if t.Sender == node {
					out += t.NumBlocks
				}
				if t.Receiver == node {
					in += t.NumBlocks
				}
			}
			for _, t := range sched.Writes {
				if t.Sender == node {
					take += t.NumBlocks
				}
				if t.Receiver == node {
					flushIn += t.NumBlocks
				}
			}
			if out > 0 {
				say("shmem_limits + mk_writable     (%d outgoing blocks)", out)
			}
			if take > 0 {
				say("mk_writable                    (%d non-owner-write blocks)", take)
			}
			if len(sched.Reads)+len(sched.Writes) > 0 {
				say("barrier                        (order step 1 before step 2)")
			}
			if in > 0 {
				say("implicit_writable + expect     (%d incoming blocks)", in)
			}
			if flushIn > 0 {
				say("implicit_writable              (%d flush-target blocks)", flushIn)
			}
			if len(sched.Reads)+len(sched.Writes) > 0 {
				say("barrier                        (both sides ready)")
			}
			for _, t := range sched.Reads {
				if t.Sender == node {
					say("send -> node %-2d                (%s%v, %d blocks)", t.Receiver, t.Array.Name, t.Sec, t.NumBlocks)
				}
			}
			if in > 0 {
				say("ready_to_recv                  (until %d blocks arrive)", in)
			}
			say("<loop body>")
			for _, t := range sched.Writes {
				if t.Sender == node {
					say("flush -> node %-2d               (%s%v, %d blocks)", t.Receiver, t.Array.Name, t.Sec, t.NumBlocks)
				}
			}
			say("barrier                        (loop complete)")
			if flushIn > 0 {
				say("ready_to_recv                  (flushed data)")
			}
			if in > 0 {
				say("implicit_invalidate            (%d reader frames)", in)
				say("barrier                        (directory consistent)")
			}
			if !emitted {
				fmt.Printf("%s  (no communication)\n", ind)
			}
		case *ir.Reduce:
			fmt.Printf("%s%s: <reduce via low-level messages>\n", ind, st.Label)
		}
	}
}

func dumpStmts(an *compiler.Analysis, body []ir.Stmt, env map[string]int, sched bool, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range body {
		switch st := s.(type) {
		case *ir.ParLoop:
			dumpRule(an, st, an.LoopRuleOf(st), env, sched, ind, st.Label)
		case *ir.Reduce:
			dumpRule(an, st, an.ReduceRuleOf(st), env, sched, ind, st.Label)
		case *ir.Block:
			dumpStmts(an, st.Body, env, sched, depth)
		case *ir.SeqLoop:
			lo := st.Lo.Eval(env)
			fmt.Printf("%sDO %s = %v, %v (schedules shown for %s=%d)\n", ind, st.Var, st.Lo, st.Hi, st.Var, lo)
			env[st.Var] = lo
			dumpStmts(an, st.Body, env, sched, depth+1)
			delete(env, st.Var)
		}
	}
}

func dumpRule(an *compiler.Analysis, key any, rule *compiler.LoopRule, env map[string]int, sched bool, ind, label string) {
	fmt.Printf("%sloop %s: anchor %v", ind, label, rule.Anchor)
	if rule.DistVar != "" {
		fmt.Printf(", owner-computes on %s", rule.DistVar)
	} else {
		fmt.Printf(", single-processor")
	}
	if len(rule.UsedSym) > 0 {
		fmt.Printf(", parametric in %v", rule.UsedSym)
	}
	fmt.Println()
	for _, rr := range rule.Reads {
		red := ""
		if rr.Redundant {
			red = "  [PRE: redundant]"
		}
		fmt.Printf("%s  non-owner read  %v (%v)%s\n", ind, rr.Ref, rr.Kind, red)
	}
	for _, rr := range rule.Writes {
		fmt.Printf("%s  non-owner write %v (%v)\n", ind, rr.Ref, rr.Kind)
	}
	if !sched {
		return
	}
	s := an.Schedule(key, rule, env)
	for _, t := range s.Reads {
		fmt.Printf("%s    send %v\n", ind, t)
	}
	for _, t := range s.Writes {
		fmt.Printf("%s    flush %v\n", ind, t)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hpfc:", err)
	os.Exit(1)
}
