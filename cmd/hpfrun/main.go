// Command hpfrun runs one application (or a mini-HPF source file) on
// the simulated fine-grain DSM cluster and reports timing and
// communication statistics.
//
// Examples:
//
//	hpfrun -app jacobi -opt rtelim
//	hpfrun -app jacobi -opt pre -verify -check
//	hpfrun -app lu -nodes 4 -cpus 1 -size paper
//	hpfrun -app cg -backend mp
//	hpfrun -file prog.hpf -param N=512 -param ITERS=10 -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hpfdsm/internal/analysis"
	"hpfdsm/internal/apps"
	"hpfdsm/internal/bench"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/ir"
	"hpfdsm/internal/lang"
	"hpfdsm/internal/profiling"
	"hpfdsm/internal/runtime"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/trace"
)

type crashFlags []config.CrashSpec

func (c *crashFlags) String() string { return fmt.Sprint([]config.CrashSpec(*c)) }
func (c *crashFlags) Set(s string) error {
	for _, part := range strings.Split(s, ",") {
		cs, err := config.ParseCrashSpec(strings.TrimSpace(part))
		if err != nil {
			return err
		}
		*c = append(*c, cs)
	}
	return nil
}

type paramFlags map[string]int

func (p paramFlags) String() string { return fmt.Sprint(map[string]int(p)) }
func (p paramFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected NAME=VALUE, got %q", s)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return err
	}
	p[strings.ToUpper(k)] = n
	return nil
}

func main() {
	app := flag.String("app", "", "application: pde, shallow, grav, lu, cg, jacobi")
	file := flag.String("file", "", "mini-HPF source file (alternative to -app)")
	size := flag.String("size", "bench", "problem sizes for -app: bench, paper, scaled")
	nodes := flag.Int("nodes", 8, "cluster size")
	topoName := flag.String("topo", "flat", "synchronization/invalidation topology: flat (master unicast) or tree (combining tree + multicast fan-out)")
	radix := flag.Int("radix", 0, "combining-tree radix for -topo tree (0 = default of 4)")
	cpus := flag.Int("cpus", 2, "CPUs per node: 2 = dedicated protocol processor, 1 = interleaved")
	optName := flag.String("opt", "rtelim", "optimization level: none, base, bulk, rtelim, pre")
	backend := flag.String("backend", "sm", "backend: sm (shared memory) or mp (message passing)")
	blockSize := flag.Int("block", 128, "coherence block size in bytes")
	machineFile := flag.String("machine", "", "JSON file overriding the machine configuration (fields of config.Machine)")
	showStats := flag.Bool("stats", false, "print per-node statistics")
	drop := flag.Float64("drop", 0, "fault injection: probability a transmission is lost (0..1)")
	dup := flag.Float64("dup", 0, "fault injection: probability a transmission is duplicated (0..1)")
	jitter := flag.Int64("jitter", 0, "fault injection: max extra per-message delay in microseconds")
	reorder := flag.Float64("reorder", 0, "fault injection: probability a message is delayed past later traffic (0..1)")
	faultSeed := flag.Uint64("fault-seed", 1, "fault injection PRNG seed")
	var crashes crashFlags
	flag.Var(&crashes, "crash", `kill a node: "node=N@epoch=E" or "node=N@t=4ms" (repeatable, comma-separable)`)
	ckpt := flag.Bool("ckpt", false, "capture barrier-consistent checkpoints even with no crashes configured")
	ckptDir := flag.String("ckpt-dir", "", "persist the latest checkpoint blob to this directory (implies -ckpt)")
	check := flag.Bool("check", false, "audit coherence invariants at every barrier and reduction")
	verify := flag.Bool("verify", false, "statically verify the schedules at the selected level before running; refuse to simulate on hard errors")
	profile := flag.Bool("profile", false, "print a per-loop time profile")
	gantt := flag.Int("gantt", 0, "print an ASCII timeline this many characters wide (implies -profile)")
	profileJSON := flag.String("profile-json", "", "write the per-loop profile as JSON to this file (implies -profile)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the simulator to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	traceOut := flag.String("trace-out", "", "write the causal protocol-event trace (Chrome trace-event JSON, loadable in Perfetto) to this file")
	pdes := flag.Int("pdes", 1, "parallel simulation: partition the simulated nodes across this many OS threads (1 = sequential; statistics are bit-identical either way)")
	noAgg := flag.Bool("no-agg", false, "disable the barrier-epoch message aggregation layer")
	aggThreshold := flag.Int("agg-threshold", 0, "aggregation: per-(loop,destination) byte volume at which epoch aggregation replaces bulk transfer (0 = default of 2 blocks)")
	aggDelay := flag.Int64("agg-delay", 0, "aggregation: engine-side batch window in microseconds (0 = default)")
	heatmap := flag.Bool("heatmap", false, "print the per-block heat map and residual-miss provenance table")
	heatmapJSON := flag.String("heatmap-json", "", "write the per-block heat map as JSON to this file")
	params := paramFlags{}
	flag.Var(params, "param", "override a PARAM (NAME=VALUE, repeatable)")
	flag.Parse()

	stopProf, err0 := profiling.Start(*cpuProfile, *memProfile, *traceFile)
	if err0 != nil {
		fail(err0)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "hpfrun: profiling:", err)
		}
	}()

	var prog *ir.Program
	var err error
	switch {
	case *app != "":
		a, err2 := apps.ByName(*app)
		if err2 != nil {
			fail(err2)
		}
		var sizing bench.Sizing
		switch *size {
		case "bench":
			sizing = bench.Bench
		case "paper":
			sizing = bench.Paper
		case "scaled":
			sizing = bench.Scaled
		default:
			fail(fmt.Errorf("unknown -size %q", *size))
		}
		base := bench.ParamsFor(a, sizing)
		merged := map[string]int{}
		for k, v := range base {
			merged[k] = v
		}
		for k, v := range params {
			merged[k] = v
		}
		prog, err = a.Program(merged)
	case *file != "":
		src, err2 := os.ReadFile(*file)
		if err2 != nil {
			fail(err2)
		}
		prog, err = lang.ParseWithOverrides(string(src), params)
	default:
		fail(fmt.Errorf("one of -app or -file is required"))
	}
	if err != nil {
		fail(err)
	}

	opt, err := compiler.ParseLevel(*optName)
	if err != nil {
		fail(err)
	}
	mc := config.Default()
	if *machineFile != "" {
		f, err := os.Open(*machineFile)
		if err != nil {
			fail(err)
		}
		mc, err = config.FromJSON(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	}
	mc = mc.WithNodes(*nodes).WithBlockSize(*blockSize)
	tp, err := config.ParseTopology(*topoName)
	if err != nil {
		fail(err)
	}
	mc = mc.WithTopology(tp).WithRadix(*radix)
	switch *cpus {
	case 1:
		mc = mc.WithCPUMode(config.SingleCPU)
	case 2:
		mc = mc.WithCPUMode(config.DualCPU)
	default:
		fail(fmt.Errorf("-cpus must be 1 or 2"))
	}
	if *noAgg {
		mc = mc.WithoutCoalesce()
	}
	if *aggThreshold != 0 {
		mc.AggThreshold = *aggThreshold
	}
	if *aggDelay != 0 {
		mc.AggDelay = sim.Time(*aggDelay) * sim.Microsecond
	}
	if *drop != 0 || *dup != 0 || *jitter != 0 || *reorder != 0 || len(crashes) > 0 {
		f := mc.Faults
		f.Drop = *drop
		f.Dup = *dup
		f.Jitter = *jitter * 1000 // µs -> ns
		f.Reorder = *reorder
		f.Seed = *faultSeed
		f.Crashes = append(f.Crashes, crashes...)
		mc = mc.WithFaults(f)
	}
	opts := runtime.Options{Machine: mc, Opt: opt, Check: *check,
		Checkpoint: *ckpt || *ckptDir != "", CkptDir: *ckptDir,
		Profile:    *profile || *gantt > 0 || *profileJSON != "",
		Partitions: *pdes}
	var tracer *trace.Tracer
	if *traceOut != "" || *heatmap || *heatmapJSON != "" {
		tracer = trace.New(mc.Nodes)
		opts.Trace = tracer
	}
	if *verify {
		rep, err := analysis.Verify(prog, mc, opt)
		if err != nil {
			fail(err)
		}
		if rep.HasErrors() {
			fmt.Fprint(os.Stderr, rep)
			fail(fmt.Errorf("static verification failed with %d error(s); refusing to simulate", rep.Errors()))
		}
		fmt.Printf("verified  %d loop(s), %d schedule instance(s) at level %v: clean\n",
			rep.Loops, rep.Instances, opt)
		opts.Verified = rep
	}
	if *backend == "mp" {
		opts.Backend = runtime.MessagePassing
	} else if *backend != "sm" {
		fail(fmt.Errorf("unknown -backend %q", *backend))
	}

	res, err := runtime.Run(prog, opts)
	if err != nil {
		fail(err)
	}

	fmt.Printf("program   %s\n", prog.Name)
	fmt.Printf("machine   %d node(s), %s, %dB blocks, backend %v, opt %v\n",
		mc.Nodes, mc.CPUMode, mc.BlockSize, opts.Backend, opt)
	if mc.Topology == config.TreeTopo {
		fmt.Printf("topology  tree, radix %d\n", mc.EffectiveRadix())
	}
	if f := mc.Faults; f.Active() {
		fmt.Printf("faults    drop=%.2g dup=%.2g jitter=%dus reorder=%.2g seed=%d crashes=%d\n",
			f.Drop, f.Dup, f.Jitter/1000, f.Reorder, f.Seed, len(f.Crashes))
	}
	if res.CheckpointsTaken > 0 {
		fmt.Printf("recovery  %d crash(es) detected, %d recover(ies), %.3f ms lost; %d checkpoint(s), %.1f KB\n",
			res.CrashesDetected, res.Recoveries, float64(res.RecoveryTime)/1e6,
			res.CheckpointsTaken, float64(res.CheckpointBytes)/1024)
	}
	fmt.Printf("elapsed   %.3f ms (simulated)\n", float64(res.Elapsed)/1e6)
	fmt.Printf("misses    %d total (%.1f per node)\n", res.Stats.TotalMisses(), res.Stats.AvgMissesPerNode())
	fmt.Printf("messages  %d (%.1f KB)\n", res.Stats.TotalMessages(), float64(res.Stats.TotalBytes())/1024)
	if s := res.Stats.TotalSegsCoalesced(); s > 0 {
		fmt.Printf("coalesced %d segment(s) into %d carrier(s)\n", s, res.Stats.TotalCarriersSent())
	}
	fmt.Printf("compute   %.3f ms avg/node\n", float64(res.Stats.AvgComputeTime())/1e6)
	fmt.Printf("comm+sync %.3f ms avg/node\n", float64(res.Stats.AvgCommTime())/1e6)
	if p50 := res.Stats.MissLatencyPercentile(0.5); p50 > 0 {
		fmt.Printf("miss lat  p50 < %.0f us, p95 < %.0f us\n",
			p50, res.Stats.MissLatencyPercentile(0.95))
	}
	if fs := res.Stats.FaultSummary(); fs != "" {
		fmt.Printf("reliable  %s\n", fs)
	}
	if *check {
		fmt.Printf("checks    %d coherence audits passed (every barrier/reduction)\n", res.BarrierChecks)
	}
	if len(res.Scalars) > 0 {
		fmt.Printf("scalars   %v\n", res.Scalars)
	}
	if *showStats {
		fmt.Println()
		fmt.Print(res.Stats.String())
	}
	if *profile {
		fmt.Println()
		fmt.Print(res.Profile.String())
	}
	if *gantt > 0 {
		fmt.Println()
		fmt.Print(res.Profile.Timeline.Gantt(*gantt))
	}
	if *profileJSON != "" {
		f, err := os.Create(*profileJSON)
		if err != nil {
			fail(err)
		}
		if err := res.Profile.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := tracer.WriteChrome(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("trace     %s (open in https://ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}
	if *heatmap {
		fmt.Println()
		tracer.Heat.WriteText(os.Stdout, tracer.BlockInfo)
		fmt.Println()
		tracer.Heat.WriteMissTable(os.Stdout, tracer.BlockInfo)
	}
	if *heatmapJSON != "" {
		f, err := os.Create(*heatmapJSON)
		if err != nil {
			fail(err)
		}
		if err := tracer.Heat.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hpfrun:", err)
	os.Exit(1)
}
