// Command covercheck enforces per-package statement-coverage floors
// over a merged Go cover profile.
//
// Usage:
//
//	go test -coverprofile=cover.out -coverpkg=./... ./...
//	covercheck -profile cover.out hpfdsm/internal/trace=80 hpfdsm/internal/network=60
//
// Each positional argument is IMPORTPATH=MINPERCENT. The profile may
// contain the same block several times (once per test package that
// exercised it); blocks are deduplicated, keeping the maximum count,
// before percentages are computed. Exits 1 if any named package is
// below its floor or absent from the profile.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// block identifies one profiled statement range within a file.
type block struct {
	file  string
	span  string // "start.col,end.col" — opaque, only used as a key
	stmts int
}

func main() {
	profile := flag.String("profile", "cover.out", "merged cover profile to read")
	flag.Parse()

	floors := map[string]float64{}
	var order []string
	for _, arg := range flag.Args() {
		pkg, pct, ok := strings.Cut(arg, "=")
		if !ok {
			fatalf("bad floor %q: want IMPORTPATH=MINPERCENT", arg)
		}
		v, err := strconv.ParseFloat(pct, 64)
		if err != nil {
			fatalf("bad floor %q: %v", arg, err)
		}
		floors[pkg] = v
		order = append(order, pkg)
	}
	if len(floors) == 0 {
		fatalf("no floors given")
	}

	covered, err := readProfile(*profile)
	if err != nil {
		fatalf("%v", err)
	}

	type agg struct{ total, hit int }
	perPkg := map[string]*agg{}
	for b, hit := range covered {
		pkg := path.Dir(b.file)
		a := perPkg[pkg]
		if a == nil {
			a = &agg{}
			perPkg[pkg] = a
		}
		a.total += b.stmts
		if hit {
			a.hit += b.stmts
		}
	}

	// Report every profiled package (sorted), then enforce the floors.
	pkgs := make([]string, 0, len(perPkg))
	for p := range perPkg {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	for _, p := range pkgs {
		a := perPkg[p]
		fmt.Printf("%-40s %6.1f%% (%d/%d statements)\n", p, pct(a.hit, a.total), a.hit, a.total)
	}

	failed := false
	for _, pkg := range order {
		a := perPkg[pkg]
		if a == nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: not in profile %s\n", pkg, *profile)
			failed = true
			continue
		}
		if got := pct(a.hit, a.total); got < floors[pkg] {
			fmt.Fprintf(os.Stderr, "FAIL %s: coverage %.1f%% below floor %.1f%%\n", pkg, got, floors[pkg])
			failed = true
		} else {
			fmt.Printf("ok   %s: %.1f%% >= %.1f%%\n", pkg, got, floors[pkg])
		}
	}
	if failed {
		os.Exit(1)
	}
}

func pct(hit, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(hit) / float64(total)
}

// readProfile parses a cover profile into per-block hit flags,
// deduplicating repeated blocks (a block is covered if any test
// package covered it).
func readProfile(name string) (map[block]bool, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	covered := map[block]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") || line == "" {
			continue
		}
		// file.go:S.C,E.C numStmts count
		loc, rest, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("%s: malformed line %q", name, line)
		}
		file, span, ok := strings.Cut(loc, ":")
		if !ok {
			return nil, fmt.Errorf("%s: malformed location %q", name, loc)
		}
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s: malformed counts %q", name, rest)
		}
		stmts, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		count, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		b := block{file: file, span: span, stmts: stmts}
		covered[b] = covered[b] || count > 0
	}
	return covered, sc.Err()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "covercheck: "+format+"\n", args...)
	os.Exit(1)
}
