module hpfdsm

go 1.24
