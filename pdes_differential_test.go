// PDES differential tests: a partitioned run of the conservative
// window scheduler must be observationally indistinguishable from the
// sequential event loop. Not "statistically close" — bit-identical:
// the same elapsed simulated time, the same per-node protocol
// counters, and the same final array contents down to the last
// mantissa bit, for every application at every optimization level.
//
// This is the strongest check the design admits: the window scheduler
// never forces a partition's clock, the cross-partition mailbox merges
// messages in the same (arrival, send-time, source) total order the
// sequential heap would have used, and lookahead guarantees no message
// can arrive inside an already-executed window. Any divergence in any
// counter on any node is a determinism bug, so the comparison covers
// all of them.
package hpfdsm_test

import (
	"math"
	"testing"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/runtime"
	"hpfdsm/internal/stats"
)

// runPDES executes one app at one opt level with the given partition
// count and returns the result.
func runPDES(t *testing.T, a *apps.App, opt compiler.Level, parts int) *runtime.Result {
	t.Helper()
	prog, err := a.Program(a.ScaledParams)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Run(prog, runtime.Options{
		Machine:    config.Default(),
		Opt:        opt,
		Backend:    runtime.SharedMemory,
		Partitions: parts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func diffNodeStats(t *testing.T, node int, seq, par *stats.Node) {
	t.Helper()
	type field struct {
		name     string
		seq, par int64
	}
	fields := []field{
		{"ReadMisses", seq.ReadMisses, par.ReadMisses},
		{"WriteMisses", seq.WriteMisses, par.WriteMisses},
		{"UpgradeMisses", seq.UpgradeMisses, par.UpgradeMisses},
		{"MsgsSent", seq.MsgsSent, par.MsgsSent},
		{"MsgsRecv", seq.MsgsRecv, par.MsgsRecv},
		{"BytesSent", seq.BytesSent, par.BytesSent},
		{"BytesRecv", seq.BytesRecv, par.BytesRecv},
		{"SegsCoalesced", seq.SegsCoalesced, par.SegsCoalesced},
	}
	for _, f := range fields {
		if f.seq != f.par {
			t.Errorf("node %d: %s = %d under PDES, %d sequential", node, f.name, f.par, f.seq)
		}
	}
}

// TestPDESDifferential runs every app at every optimization level
// sequentially and at 2 and 4 partitions, and demands bit-identical
// observables. Even cg — whose reference comparison is tolerance-based
// because reductions reassociate against the *sequential Go program* —
// must match the sequential *simulation* exactly: both executions feed
// the reduction tree contributions in the same deterministic order.
func TestPDESDifferential(t *testing.T) {
	levels := []compiler.Level{compiler.OptNone, compiler.OptBulk, compiler.OptRTElim}
	partCounts := []int{2, 4, 8}
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, opt := range levels {
				opt := opt
				t.Run(opt.String(), func(t *testing.T) {
					seq := runPDES(t, a, opt, 1)
					for _, parts := range partCounts {
						par := runPDES(t, a, opt, parts)
						prefix := "p" + string(rune('0'+parts)) + ": "
						if par.Elapsed != seq.Elapsed {
							t.Errorf("%selapsed %dns under PDES, %dns sequential", prefix, par.Elapsed, seq.Elapsed)
						}
						if len(par.Stats.Nodes) != len(seq.Stats.Nodes) {
							t.Fatalf("%s%d stat nodes under PDES, %d sequential", prefix, len(par.Stats.Nodes), len(seq.Stats.Nodes))
						}
						for i := range seq.Stats.Nodes {
							diffNodeStats(t, i, &seq.Stats.Nodes[i], &par.Stats.Nodes[i])
						}
						for _, name := range a.CheckArrays {
							got := par.ArrayData(name)
							want := seq.ArrayData(name)
							if len(got) != len(want) {
								t.Fatalf("%sarray %s: length %d under PDES, %d sequential", prefix, name, len(got), len(want))
							}
							for i := range got {
								if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
									t.Fatalf("%sarray %s[%d] = %x under PDES, %x sequential (expected bit-identical)",
										prefix, name, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
								}
							}
						}
					}
				})
			}
		})
	}
}
