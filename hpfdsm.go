// Package hpfdsm reproduces Chandra & Larus, "Optimizing Communication
// in HPF Programs for Fine-Grain Distributed Shared Memory" (PPoPP
// 1997): a mini-HPF compiler whose communication analysis drives
// compiler-directed coherence-protocol optimizations, running on a
// deterministic simulation of a Tempest-style fine-grain DSM cluster.
//
// This package is the public facade. A typical use:
//
//	prog, err := hpfdsm.Compile(source, nil)
//	res, err := hpfdsm.Run(prog, hpfdsm.Options{
//	        Machine: hpfdsm.DefaultMachine(),
//	        Opt:     hpfdsm.OptRTElim,
//	})
//	fmt.Println(res.Elapsed, res.Stats.TotalMisses())
//
// The building blocks live under internal/: the simulation kernel
// (sim), the network and node models (network, tempest), fine-grain
// access control (memory), the default and compiler-directed coherence
// protocols (protocol), the section algebra and HPF distributions
// (sections, distribute), the front end (lang), the IR and analysis
// (ir, compiler), and the shared-memory and message-passing executors
// (runtime).
package hpfdsm

import (
	"hpfdsm/internal/apps"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/ir"
	"hpfdsm/internal/lang"
	"hpfdsm/internal/runtime"
)

// Machine is a simulated cluster configuration (see DefaultMachine).
type Machine = config.Machine

// CPUMode selects dedicated vs interleaved protocol processing.
type CPUMode = config.CPUMode

// CPU modes.
const (
	DualCPU   = config.DualCPU
	SingleCPU = config.SingleCPU
)

// DefaultMachine returns the paper's Table 1 cluster: 8 dual-processor
// nodes, Myrinet-class network, 128-byte coherence blocks.
func DefaultMachine() Machine { return config.Default() }

// OptLevel is the cumulative compiler/protocol optimization level.
type OptLevel = compiler.Level

// Optimization levels.
const (
	// OptNone: default invalidation protocol only.
	OptNone = compiler.OptNone
	// OptBase: compiler-orchestrated sender-initiated transfers.
	OptBase = compiler.OptBase
	// OptBulk: plus bulk transfer of contiguous blocks.
	OptBulk = compiler.OptBulk
	// OptRTElim: plus run-time call and barrier elimination.
	OptRTElim = compiler.OptRTElim
	// OptPRE: plus redundant-communication elimination.
	OptPRE = compiler.OptPRE
)

// ParseOptLevel converts a level name ("none", "base", "bulk",
// "rtelim", "pre") to an OptLevel.
func ParseOptLevel(s string) (OptLevel, error) { return compiler.ParseLevel(s) }

// Backend selects the execution substrate.
type Backend = runtime.Backend

// Backends.
const (
	// SharedMemory is the fine-grain DSM (the paper's system).
	SharedMemory = runtime.SharedMemory
	// MessagePassing is the explicit-messaging baseline.
	MessagePassing = runtime.MessagePassing
)

// Options configures a run.
type Options = runtime.Options

// Result is a completed run: simulated elapsed time, per-node
// statistics, final scalars, and access to final array contents.
type Result = runtime.Result

// Program is a compiled data-parallel program.
type Program = ir.Program

// App is one of the paper's six benchmark applications.
type App = apps.App

// Compile parses a mini-HPF program. overrides, if non-nil, replaces
// PARAM values (problem scaling); parameter names are upper-case.
func Compile(source string, overrides map[string]int) (*Program, error) {
	return lang.ParseWithOverrides(source, overrides)
}

// PrintSource pretty-prints a compiled program as canonical mini-HPF
// source text (Compile(PrintSource(p)) is semantically equivalent to p).
func PrintSource(prog *Program) string { return lang.Print(prog) }

// Run executes a compiled program on the simulated cluster.
func Run(prog *Program, opts Options) (*Result, error) {
	return runtime.Run(prog, opts)
}

// RunSource compiles and runs in one step.
func RunSource(source string, overrides map[string]int, opts Options) (*Result, error) {
	prog, err := Compile(source, overrides)
	if err != nil {
		return nil, err
	}
	return Run(prog, opts)
}

// Apps returns the paper's application suite (Table 2 order): pde,
// shallow, grav, lu, cg, jacobi.
func Apps() []*App { return apps.All() }

// AppByName looks up one application.
func AppByName(name string) (*App, error) { return apps.ByName(name) }
