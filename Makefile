GO ?= go

.PHONY: all build test vet race lint lint-go artifact-guard check bench fmt cover clean

# Every shipped application, linted by the static incoherence-safety
# verifier at every optimization level.
APPS = jacobi pde shallow grav lu cg

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The sim kernel hands control between goroutines through unbuffered
# channels; the race detector is the proof that the one-runnable-
# goroutine discipline holds everywhere, including the fault-injection
# and reliable-delivery layer. Instrumentation slows the differential
# suites ~10x, so the gate sets its own deadline instead of relying on
# go test's 10-minute default.
race:
	$(GO) test -race -timeout 30m ./...

# Static verification: the schedule contract checker and IR race
# analysis over every shipped application, all optimization levels.
# Fails on any contract or race error.
lint:
	@for a in $(APPS); do \
		echo "hpfc -lint -app $$a"; \
		$(GO) run ./cmd/hpfc -app $$a -lint || exit 1; \
	done

# Determinism/hot-path lint over the simulator's own Go source: no
# unordered map iteration, wall-clock reads, pooled-value lifetime
# bugs, hotpath allocations, or stray concurrency in the deterministic
# set. Fails on any unsuppressed finding; every suppression is listed
# with its reason.
lint-go:
	$(GO) run ./cmd/simlint ./...

# Generated outputs (coverage profiles, CPU/heap profiles, runtime
# traces, CI benchmark scratch) must never be committed: the
# .gitignore patterns keep them out of `git add .`, and this guard
# fails the gate if one slips into the index anyway.
artifact-guard:
	@bad=$$(git ls-files -- 'cover.out' '*.out' '*.pprof' '*.cpuprofile' '*.memprofile' \
		'BENCH_ci.json' 'paperbench_output.txt' | grep -v '_test\.go$$' || true); \
	if [ -n "$$bad" ]; then \
		echo "build artifacts are tracked by git:"; echo "$$bad"; \
		echo "run 'git rm --cached <file>' and commit"; exit 1; \
	fi

# Everything the CI gate runs.
check: build vet test race lint lint-go artifact-guard

# Perf trajectory: run the short regression suite and write the next
# BENCH_<n>.json in sequence. Compare any two files entry-by-entry;
# the sim-ms fields must not drift between them (same model, faster
# simulator).
bench:
	@n=0; while [ -e BENCH_$$n.json ]; do n=$$((n+1)); done; \
	echo "writing BENCH_$$n.json"; \
	$(GO) run ./cmd/paperbench -bench BENCH_$$n.json

# CI gate: rerun the suite and fail on >2x ns/op regression (or any
# sim-ms drift) against the newest committed BENCH_<n>.json.
bench-check:
	@base=$$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1); \
	if [ -z "$$base" ]; then echo "no committed BENCH_*.json baseline"; exit 1; fi; \
	echo "baseline $$base"; \
	$(GO) run ./cmd/paperbench -bench BENCH_ci.json -bench-baseline $$base

fmt:
	gofmt -w .

# Statement coverage with per-package floors on the protocol-critical
# packages (the profile is merged across all test packages, so a
# package's floor counts coverage from anyone's tests, not just its
# own). The floors sit well under current values; they catch a test
# deletion or a big untested addition, not normal drift.
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./... ./...
	$(GO) run ./cmd/covercheck -profile cover.out \
		hpfdsm/internal/trace=90 \
		hpfdsm/internal/protocol=85 \
		hpfdsm/internal/network=85 \
		hpfdsm/internal/profiling=75 \
		hpfdsm/internal/simlint=80 \
		hpfdsm/internal/analysis=80

# Remove generated artifacts: coverage profiles, CPU/heap profiles,
# runtime traces, and the CI benchmark scratch json. Committed
# BENCH_<n>.json baselines are never touched.
clean:
	rm -f cover.out BENCH_ci.json trace.out paperbench_output.txt
	rm -f *.pprof *.cpuprofile *.memprofile
