GO ?= go

.PHONY: all build test vet race lint check bench fmt

# Every shipped application, linted by the static incoherence-safety
# verifier at every optimization level.
APPS = jacobi pde shallow grav lu cg

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The sim kernel hands control between goroutines through unbuffered
# channels; the race detector is the proof that the one-runnable-
# goroutine discipline holds everywhere, including the fault-injection
# and reliable-delivery layer.
race:
	$(GO) test -race ./...

# Static verification: the schedule contract checker and IR race
# analysis over every shipped application, all optimization levels.
# Fails on any contract or race error.
lint:
	@for a in $(APPS); do \
		echo "hpfc -lint -app $$a"; \
		$(GO) run ./cmd/hpfc -app $$a -lint || exit 1; \
	done

# Everything the CI gate runs.
check: build vet test race lint

bench:
	$(GO) run ./cmd/paperbench -size scaled

fmt:
	gofmt -w .
