GO ?= go

.PHONY: all build test vet race check bench fmt

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The sim kernel hands control between goroutines through unbuffered
# channels; the race detector is the proof that the one-runnable-
# goroutine discipline holds everywhere, including the fault-injection
# and reliable-delivery layer.
race:
	$(GO) test -race ./...

# Everything the CI gate runs.
check: build vet test race

bench:
	$(GO) run ./cmd/paperbench -size scaled

fmt:
	gofmt -w .
