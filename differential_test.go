// Differential correctness tests: every application, at every
// optimization level the paper measures (unoptimized, bulk transfers,
// run-time-test elimination), on both back ends, must compute the same
// final arrays as the sequential Go reference.
//
// For five of the six apps the comparison is bit-exact: their parallel
// value chains are reduction-free (reductions only feed convergence
// tests or scalars), so the DSM run performs the identical sequence of
// floating-point operations as the reference. cg is the exception —
// its AllReduce results (dot products) feed back into the array
// updates, and the protocol folds per-node partial sums in canonical
// ascending node order, which still associates differently from the
// reference's single serial loop; it is compared under the app's
// documented tolerance instead. (The canonical fold is what makes the
// DSM result deterministic and topology-independent — see
// scale_differential_test.go — but no fold order can match a serial
// sum bit-for-bit.)
package hpfdsm_test

import (
	"math"
	"testing"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/runtime"
)

func TestDifferentialAgainstReference(t *testing.T) {
	exact := map[string]bool{
		"pde": true, "shallow": true, "grav": true, "lu": true, "jacobi": true,
		"cg": false, // reduce results feed array updates: reassociation
	}
	levels := []compiler.Level{compiler.OptNone, compiler.OptBulk, compiler.OptRTElim}
	backends := []struct {
		name string
		b    runtime.Backend
	}{
		{"sm", runtime.SharedMemory},
		{"mp", runtime.MessagePassing},
	}
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			prog, err := a.Program(a.ScaledParams)
			if err != nil {
				t.Fatal(err)
			}
			ref := a.Reference(a.ScaledParams)
			for _, opt := range levels {
				for _, be := range backends {
					t.Run(opt.String()+"/"+be.name, func(t *testing.T) {
						res, err := runtime.Run(prog, runtime.Options{
							Machine: config.Default(), Opt: opt, Backend: be.b})
						if err != nil {
							t.Fatal(err)
						}
						for _, name := range a.CheckArrays {
							got := res.ArrayData(name)
							want := ref[name]
							if len(got) != len(want) {
								t.Fatalf("array %s: length %d vs reference %d", name, len(got), len(want))
							}
							if exact[a.Name] {
								for i := range got {
									if got[i] != want[i] {
										t.Fatalf("array %s[%d] = %x, reference %x (expected bit-exact)",
											name, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
									}
								}
								continue
							}
							worst, wi := 0.0, -1
							for i := range got {
								scale := math.Max(1, math.Abs(want[i]))
								if d := math.Abs(got[i]-want[i]) / scale; d > worst {
									worst, wi = d, i
								}
							}
							if worst > a.Tol {
								t.Fatalf("array %s diverges: rel err %g at %d (got %g want %g, tol %g)",
									name, worst, wi, got[wi], want[wi], a.Tol)
							}
						}
					})
				}
			}
		})
	}
}
