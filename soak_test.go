// Aggregation soak test: the barrier-epoch coalescing layer composed
// with PR 1's unreliable wire. Each application runs twice over a
// faulty network — messages dropped, duplicated, and reordered, with
// the reliable-delivery layer recovering and the barrier-instant
// coherence audit armed — once with aggregation on and once off. The
// final data words must be bit-identical between the two runs: a
// coalesced carrier that retransmits, duplicates, or arrives late must
// behave exactly as the standalone messages it replaced.
package hpfdsm_test

import (
	"math"
	"testing"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/runtime"
)

func TestAggregationSoakUnderFaults(t *testing.T) {
	faults := config.Faults{Drop: 0.02, Dup: 0.01, Reorder: 0.01, Jitter: 5000, Seed: 1}
	// cg's AllReduce combines contributions in arrival order, and the
	// two runs time differently, so its reduction-fed arrays are
	// compared under the app's tolerance; the rest must be bit-exact.
	exact := map[string]bool{"jacobi": true, "shallow": true, "lu": true, "cg": false}
	for _, name := range []string{"jacobi", "shallow", "lu", "cg"} {
		name := name
		t.Run(name, func(t *testing.T) {
			a, err := apps.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := a.Program(a.ScaledParams)
			if err != nil {
				t.Fatal(err)
			}
			mc := config.Default().WithFaults(faults)
			run := func(m config.Machine) *runtime.Result {
				r, err := runtime.Run(prog, runtime.Options{Machine: m, Opt: compiler.OptRTElim, Check: true})
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			on := run(mc)
			off := run(mc.WithoutCoalesce())
			if on.Stats.TotalRetransmits() == 0 || off.Stats.TotalRetransmits() == 0 {
				t.Fatal("fault injection inactive: no retransmissions observed")
			}
			if name != "lu" && on.Stats.TotalSegsCoalesced() == 0 {
				// lu's phases collapse to one wire message per pair, so its
				// measured region legitimately never aggregates.
				t.Fatal("aggregated run never engaged the coalescer")
			}
			if off.Stats.TotalSegsCoalesced() != 0 || off.Stats.TotalCarriersSent() != 0 {
				t.Fatal("NoCoalesce run still coalesced traffic")
			}
			if on.BarrierChecks == 0 || off.BarrierChecks == 0 {
				t.Fatal("barrier-instant coherence audits did not run")
			}
			for _, arr := range a.CheckArrays {
				got, want := on.ArrayData(arr), off.ArrayData(arr)
				if len(got) != len(want) {
					t.Fatalf("array %s: length %d vs %d", arr, len(got), len(want))
				}
				for i := range got {
					if exact[name] {
						if got[i] != want[i] {
							t.Fatalf("array %s[%d] = %x aggregated, %x unaggregated (must be bit-identical)",
								arr, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
						}
						continue
					}
					scale := math.Max(1, math.Abs(want[i]))
					if d := math.Abs(got[i]-want[i]) / scale; d > a.Tol {
						t.Fatalf("array %s[%d] diverges: rel err %g (got %g want %g, tol %g)",
							arr, i, d, got[i], want[i], a.Tol)
					}
				}
			}
		})
	}
}
