// Aggregation soak test: the barrier-epoch coalescing layer composed
// with PR 1's unreliable wire. Each application runs twice over a
// faulty network — messages dropped, duplicated, and reordered, with
// the reliable-delivery layer recovering and the barrier-instant
// coherence audit armed — once with aggregation on and once off. The
// final data words must be bit-identical between the two runs: a
// coalesced carrier that retransmits, duplicates, or arrives late must
// behave exactly as the standalone messages it replaced.
package hpfdsm_test

import (
	"math"
	"testing"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/runtime"
)

// TestCrashSoakUnderFaults composes every fault dimension at once: a
// lossy, duplicating, reordering wire, the aggregation layer on and
// off, and one or two crash-stop node failures with checkpoint/restart
// recovery — with the barrier-instant coherence audit armed. The final
// data must stay bit-identical to the clean (fault-free, crash-free)
// run: retransmission, carrier dedup, failure detection, rollback, and
// ghost replay must all compose without touching a single data bit.
func TestCrashSoakUnderFaults(t *testing.T) {
	wire := config.Faults{Drop: 0.02, Dup: 0.01, Reorder: 0.01, Jitter: 5000, Seed: 1}
	crashGrids := [][]config.CrashSpec{
		{{Node: 2, Epoch: 4}},
		{{Node: 2, Epoch: 4}, {Node: 3, Epoch: 8}},
	}
	for _, name := range []string{"jacobi", "shallow"} {
		name := name
		t.Run(name, func(t *testing.T) {
			a, err := apps.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := a.Program(a.ScaledParams)
			if err != nil {
				t.Fatal(err)
			}
			run := func(m config.Machine) *runtime.Result {
				r, err := runtime.Run(prog, runtime.Options{Machine: m, Opt: compiler.OptRTElim, Check: true})
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			clean := run(config.Default())
			want := map[string][]float64{}
			for _, arr := range a.CheckArrays {
				want[arr] = clean.ArrayData(arr)
			}
			for _, crashes := range crashGrids {
				for _, agg := range []bool{true, false} {
					f := wire
					f.Crashes = crashes
					mc := config.Default().WithFaults(f)
					if !agg {
						mc = mc.WithoutCoalesce()
					}
					res := run(mc)
					if int(res.Recoveries) != len(crashes) {
						t.Fatalf("agg=%v crashes=%d: %d recoveries", agg, len(crashes), res.Recoveries)
					}
					if res.Stats.TotalWireDrops() == 0 {
						t.Fatalf("agg=%v crashes=%d: wire faults inert", agg, len(crashes))
					}
					for _, arr := range a.CheckArrays {
						got := res.ArrayData(arr)
						for i := range want[arr] {
							if got[i] != want[arr][i] {
								t.Fatalf("agg=%v crashes=%d: array %s[%d] = %x, clean run %x (must be bit-identical)",
									agg, len(crashes), arr, i,
									math.Float64bits(got[i]), math.Float64bits(want[arr][i]))
							}
						}
					}
				}
			}
		})
	}
}

// TestCrashSoakDeterministic reruns one fully loaded configuration —
// lossy wire plus two crashes — and demands identical timing, fault
// counters, and recovery accounting: the whole failure path draws from
// the one seeded PRNG and the deterministic event order.
func TestCrashSoakDeterministic(t *testing.T) {
	a, err := apps.ByName("jacobi")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := a.Program(a.ScaledParams)
	if err != nil {
		t.Fatal(err)
	}
	f := config.Faults{Drop: 0.03, Dup: 0.02, Reorder: 0.02, Jitter: 5000, Seed: 7,
		Crashes: []config.CrashSpec{{Node: 1, Epoch: 3}, {Node: 3, Epoch: 7}}}
	run := func() *runtime.Result {
		r, err := runtime.Run(prog, runtime.Options{
			Machine: config.Default().WithFaults(f), Opt: compiler.OptRTElim, Check: true})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := run(), run()
	if r1.Elapsed != r2.Elapsed {
		t.Fatalf("elapsed %d vs %d: crash soak not deterministic", r1.Elapsed, r2.Elapsed)
	}
	for _, pair := range [][2]int64{
		{r1.Stats.TotalWireDrops(), r2.Stats.TotalWireDrops()},
		{r1.Stats.TotalRetransmits(), r2.Stats.TotalRetransmits()},
		{r1.Stats.TotalProbesSent(), r2.Stats.TotalProbesSent()},
		{r1.CrashesDetected, r2.CrashesDetected},
		{r1.CheckpointsTaken, r2.CheckpointsTaken},
		{r1.CheckpointBytes, r2.CheckpointBytes},
		{int64(r1.RecoveryTime), int64(r2.RecoveryTime)},
		{r1.BarrierChecks, r2.BarrierChecks},
	} {
		if pair[0] != pair[1] {
			t.Fatalf("counters differ between identical crash-soak runs: %d vs %d", pair[0], pair[1])
		}
	}
}

func TestAggregationSoakUnderFaults(t *testing.T) {
	faults := config.Faults{Drop: 0.02, Dup: 0.01, Reorder: 0.01, Jitter: 5000, Seed: 1}
	// cg's AllReduce combines contributions in arrival order, and the
	// two runs time differently, so its reduction-fed arrays are
	// compared under the app's tolerance; the rest must be bit-exact.
	exact := map[string]bool{"jacobi": true, "shallow": true, "lu": true, "cg": false}
	for _, name := range []string{"jacobi", "shallow", "lu", "cg"} {
		name := name
		t.Run(name, func(t *testing.T) {
			a, err := apps.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := a.Program(a.ScaledParams)
			if err != nil {
				t.Fatal(err)
			}
			mc := config.Default().WithFaults(faults)
			run := func(m config.Machine) *runtime.Result {
				r, err := runtime.Run(prog, runtime.Options{Machine: m, Opt: compiler.OptRTElim, Check: true})
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			on := run(mc)
			off := run(mc.WithoutCoalesce())
			if on.Stats.TotalRetransmits() == 0 || off.Stats.TotalRetransmits() == 0 {
				t.Fatal("fault injection inactive: no retransmissions observed")
			}
			if name != "lu" && on.Stats.TotalSegsCoalesced() == 0 {
				// lu's phases collapse to one wire message per pair, so its
				// measured region legitimately never aggregates.
				t.Fatal("aggregated run never engaged the coalescer")
			}
			if off.Stats.TotalSegsCoalesced() != 0 || off.Stats.TotalCarriersSent() != 0 {
				t.Fatal("NoCoalesce run still coalesced traffic")
			}
			if on.BarrierChecks == 0 || off.BarrierChecks == 0 {
				t.Fatal("barrier-instant coherence audits did not run")
			}
			for _, arr := range a.CheckArrays {
				got, want := on.ArrayData(arr), off.ArrayData(arr)
				if len(got) != len(want) {
					t.Fatalf("array %s: length %d vs %d", arr, len(got), len(want))
				}
				for i := range got {
					if exact[name] {
						if got[i] != want[i] {
							t.Fatalf("array %s[%d] = %x aggregated, %x unaggregated (must be bit-identical)",
								arr, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
						}
						continue
					}
					scale := math.Max(1, math.Abs(want[i]))
					if d := math.Abs(got[i]-want[i]) / scale; d > a.Tol {
						t.Fatalf("array %s[%d] diverges: rel err %g (got %g want %g, tol %g)",
							arr, i, d, got[i], want[i], a.Tol)
					}
				}
			}
		})
	}
}
