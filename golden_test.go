// Golden-stats determinism tests: the fast-path simulator core must be
// bit-identical to the pre-optimization model. The numbers below were
// captured from the seed implementation (interface-boxed event heap,
// uncached schedules, tree-walk interpreter) for all six applications
// at level 3 (OptRTElim), 8 nodes, dual CPU, scaled sizes. Every
// performance change must reproduce them exactly: a simulator
// optimization that shifts any simulated quantity is a model change
// and a bug.
package hpfdsm_test

import (
	"testing"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/bench"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/sim"
)

var goldenOptRTElim = []struct {
	app     string
	elapsed sim.Time
	misses  int64
	msgs    int64
	bytes   int64
}{
	{"pde", 584296130, 8680, 61660, 5020592},
	{"shallow", 117996820, 1342, 9724, 1064616},
	{"grav", 54934230, 214, 3312, 169488},
	{"lu", 77808310, 609, 5584, 403200},
	{"cg", 53001890, 543, 3748, 226544},
	{"jacobi", 25817670, 224, 2028, 182704},
}

func TestGoldenStatsOptRTElim(t *testing.T) {
	for _, g := range goldenOptRTElim {
		g := g
		t.Run(g.app, func(t *testing.T) {
			a, err := apps.ByName(g.app)
			if err != nil {
				t.Fatal(err)
			}
			r, err := bench.RunApp(a, a.ScaledParams,
				bench.Variant{Nodes: 8, CPUMode: config.DualCPU, Opt: compiler.OptRTElim})
			if err != nil {
				t.Fatal(err)
			}
			if r.Elapsed != g.elapsed {
				t.Errorf("elapsed %d, golden %d", r.Elapsed, g.elapsed)
			}
			if m := r.Stats.TotalMisses(); m != g.misses {
				t.Errorf("misses %d, golden %d", m, g.misses)
			}
			if m := r.Stats.TotalMessages(); m != g.msgs {
				t.Errorf("messages %d, golden %d", m, g.msgs)
			}
			if b := r.Stats.TotalBytes(); b != g.bytes {
				t.Errorf("bytes %d, golden %d", b, g.bytes)
			}
		})
	}
}
