// Golden-stats determinism tests: the simulated quantities below must
// reproduce exactly for all six applications at level 3 (OptRTElim),
// 8 nodes, dual CPU, scaled sizes. A simulator *optimization* that
// shifts any of them is a bug (the fast-path core was captured against
// the seed's interface-boxed event heap and tree-walk interpreter); a
// deliberate *model* change — such as the barrier-epoch message
// aggregation layer, which re-captured every row — must update them
// together with the differential tests, which remain the semantic
// gate: data words are bit-identical with aggregation on or off.
// (Most recent such change: a direct protocol-engine send now drains
// the destination's gather buffer at compose time, so buffered
// segments keep their earlier departure slots — previously a write
// grant parked in a buffer could be overtaken by the next
// transaction's invalidation, leaving the grantee a writer the
// directory had already retired. shallow/grav/cg shifted; the others
// never hit the reordering window.)
package hpfdsm_test

import (
	"testing"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/bench"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/sim"
)

var goldenOptRTElim = []struct {
	app     string
	elapsed sim.Time
	misses  int64
	msgs    int64
	bytes   int64
}{
	{"pde", 549657000, 8680, 36404, 4945108},
	{"shallow", 118847410, 1298, 9034, 1067276},
	{"grav", 55140330, 211, 3164, 169952},
	{"lu", 77808310, 609, 5584, 403200},
	{"cg", 53025230, 555, 3658, 225379},
	{"jacobi", 24362300, 224, 1612, 183536},
}

func TestGoldenStatsOptRTElim(t *testing.T) {
	for _, g := range goldenOptRTElim {
		g := g
		t.Run(g.app, func(t *testing.T) {
			a, err := apps.ByName(g.app)
			if err != nil {
				t.Fatal(err)
			}
			r, err := bench.RunApp(a, a.ScaledParams,
				bench.Variant{Nodes: 8, CPUMode: config.DualCPU, Opt: compiler.OptRTElim})
			if err != nil {
				t.Fatal(err)
			}
			if r.Elapsed != g.elapsed {
				t.Errorf("elapsed %d, golden %d", r.Elapsed, g.elapsed)
			}
			if m := r.Stats.TotalMisses(); m != g.misses {
				t.Errorf("misses %d, golden %d", m, g.misses)
			}
			if m := r.Stats.TotalMessages(); m != g.msgs {
				t.Errorf("messages %d, golden %d", m, g.msgs)
			}
			if b := r.Stats.TotalBytes(); b != g.bytes {
				t.Errorf("bytes %d, golden %d", b, g.bytes)
			}
		})
	}
}
