// Host-level profiling under PDES: -cpuprofile/-memprofile are
// observer-only (they sample the Go process, never the simulated
// machine), so they must work under -pdes and must not perturb the
// simulated results — unlike the per-loop simulated-time profiler
// (-profile), which keeps a single-threaded accumulator and stays
// rejected in partitioned mode.
package hpfdsm_test

import (
	"os"
	"path/filepath"
	"testing"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/profiling"
)

// TestPDESCPUProfile runs one app at 4 partitions with the host CPU
// profiler attached and demands (a) a non-empty profile file and (b)
// statistics bit-identical to the unprofiled run.
func TestPDESCPUProfile(t *testing.T) {
	a, err := apps.ByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	plain := runPDES(t, a, compiler.OptRTElim, 4)

	dir := t.TempDir()
	cpu := filepath.Join(dir, "pdes.cpuprofile")
	stop, err := profiling.Start(cpu, "", "")
	if err != nil {
		t.Fatal(err)
	}
	profiled := runPDES(t, a, compiler.OptRTElim, 4)
	if err := stop(); err != nil {
		t.Fatal(err)
	}

	fi, err := os.Stat(cpu)
	if err != nil {
		t.Fatalf("cpu profile not written: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatal("cpu profile is empty")
	}

	if profiled.Elapsed != plain.Elapsed {
		t.Errorf("elapsed %dns profiled, %dns unprofiled", profiled.Elapsed, plain.Elapsed)
	}
	if len(profiled.Stats.Nodes) != len(plain.Stats.Nodes) {
		t.Fatalf("%d stat nodes profiled, %d unprofiled", len(profiled.Stats.Nodes), len(plain.Stats.Nodes))
	}
	for i := range plain.Stats.Nodes {
		diffNodeStats(t, i, &plain.Stats.Nodes[i], &profiled.Stats.Nodes[i])
	}
}
