// End-to-end tests of the causal protocol-event tracing subsystem on a
// real application: the trace must reconstruct the paper's Figure 1(a)
// eight-message chain from jacobi's sharing pattern, the Chrome export
// must be well-formed, and — the acceptance bar for "zero-cost when
// disabled, read-only when enabled" — a traced run must simulate
// bit-identically to an untraced one.
package hpfdsm_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/runtime"
	"hpfdsm/internal/trace"
)

func runJacobiTraced(t *testing.T, opt compiler.Level) (*runtime.Result, *trace.Tracer) {
	t.Helper()
	a, err := apps.ByName("jacobi")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := a.Program(a.ScaledParams)
	if err != nil {
		t.Fatal(err)
	}
	mc := config.Default()
	tr := trace.New(mc.Nodes)
	res, err := runtime.Run(prog, runtime.Options{Machine: mc, Opt: opt, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	return res, tr
}

// TestJacobiTraceEightMessageChain looks for Figure 1(a)'s chain in a
// jacobi run under the default protocol (OptNone): for some address
// whose home is a third party, the handler executions must include, in
// order, read_req, put_data_req, put_data_resp, read_resp, upgrade_req,
// inval, inval_ack, write_grant — the eight causally chained messages
// of one producer/consumer exchange.
func TestJacobiTraceEightMessageChain(t *testing.T) {
	_, tr := runJacobiTraced(t, compiler.OptNone)

	chain := []string{"h:read_req", "h:put_data_req", "h:put_data_resp", "h:read_resp",
		"h:upgrade_req", "h:inval", "h:inval_ack", "h:write_grant"}
	seq := map[string][]string{}
	for _, e := range tr.Events() {
		if e.Ph != trace.PhaseSpan || e.Cat != "handler" {
			continue
		}
		for _, g := range e.Args {
			if g.K == "addr" {
				seq[g.J] = append(seq[g.J], e.Name)
			}
		}
	}
	for _, names := range seq {
		next := 0
		for _, n := range names {
			if next < len(chain) && n == chain[next] {
				next++
			}
		}
		if next == len(chain) {
			return // found the full chain on one address
		}
	}
	t.Fatalf("no address exhibits the eight-message chain (%d addresses traced)", len(seq))
}

// TestJacobiTraceWellFormed validates the exported Chrome JSON: parse,
// flow-event pairing, and presence of each lane's span categories.
func TestJacobiTraceWellFormed(t *testing.T) {
	_, tr := runJacobiTraced(t, compiler.OptRTElim)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Cat string `json:"cat"`
			ID  int64  `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("jacobi trace is not valid JSON: %v", err)
	}
	cats := map[string]int{}
	starts := map[int64]int{}
	ends := map[int64]int{}
	for _, e := range ct.TraceEvents {
		cats[e.Cat]++
		switch e.Ph {
		case "s":
			starts[e.ID]++
		case "f":
			ends[e.ID]++
		}
	}
	for _, want := range []string{"tx", "handler", "miss", "loop", "sync"} {
		if cats[want] == 0 {
			t.Errorf("no %q spans in jacobi trace", want)
		}
	}
	if len(starts) == 0 {
		t.Fatal("no flow events")
	}
	for id, n := range starts {
		if n != 1 || ends[id] != 1 {
			t.Errorf("flow %d: %d starts, %d ends", id, n, ends[id])
		}
	}

	// The heat map and miss-provenance views render non-trivially.
	var heat bytes.Buffer
	tr.Heat.WriteText(&heat, tr.BlockInfo)
	if !strings.Contains(heat.String(), "A") { // jacobi's grid array
		t.Errorf("heat map does not mention jacobi's array:\n%s", heat.String())
	}
	heat.Reset()
	tr.Heat.WriteMissTable(&heat, tr.BlockInfo)
	if !strings.Contains(heat.String(), "loop") {
		t.Errorf("miss table attributes nothing to loops:\n%s", heat.String())
	}
	heat.Reset()
	if err := tr.Heat.WriteJSON(&heat); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(heat.Bytes()) {
		t.Fatal("heat JSON invalid")
	}
}

// TestTracingDoesNotPerturbSimulation is the read-only guarantee: a
// traced run must produce bit-identical simulated statistics to an
// untraced run of the same configuration.
func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	a, err := apps.ByName("jacobi")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := a.Program(a.ScaledParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []compiler.Level{compiler.OptNone, compiler.OptRTElim} {
		mc := config.Default()
		plain, err := runtime.Run(prog, runtime.Options{Machine: mc, Opt: opt})
		if err != nil {
			t.Fatal(err)
		}
		traced, err := runtime.Run(prog, runtime.Options{Machine: mc, Opt: opt, Trace: trace.New(mc.Nodes)})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Elapsed != traced.Elapsed {
			t.Errorf("%v: elapsed %d traced vs %d untraced", opt, traced.Elapsed, plain.Elapsed)
		}
		if a, b := plain.Stats.TotalMisses(), traced.Stats.TotalMisses(); a != b {
			t.Errorf("%v: misses %d traced vs %d untraced", opt, b, a)
		}
		if a, b := plain.Stats.TotalMessages(), traced.Stats.TotalMessages(); a != b {
			t.Errorf("%v: messages %d traced vs %d untraced", opt, b, a)
		}
		if a, b := plain.Stats.TotalBytes(), traced.Stats.TotalBytes(); a != b {
			t.Errorf("%v: bytes %d traced vs %d untraced", opt, b, a)
		}
	}
}
