//go:build !race

package hpfdsm_test

const raceDetectorEnabled = false
