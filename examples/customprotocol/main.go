// Customprotocol: drive the Tempest-style substrate directly — the
// fine-grain access control and messaging primitives of the paper's
// Section 3 — and reproduce Figure 1's message-count comparison: a
// producer-consumer block transfer through the default invalidation
// protocol versus through the compiler-directed contract
// (mk_writable / implicit_writable / send / ready_to_recv /
// implicit_invalidate).
//
//	go run ./examples/customprotocol
package main

import (
	"flag"
	"fmt"

	"hpfdsm/internal/config"
	"hpfdsm/internal/memory"
	"hpfdsm/internal/protocol"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/tempest"
)

var iters = 20

func main() {
	flag.IntVar(&iters, "iters", iters, "repetitions of the transfer")
	flag.Parse()

	defMsgs, defTime := defaultProtocol()
	ccMsgs, ccTime := compilerDirected()

	fmt.Println("producer -> consumer transfer of one 128-byte block, repeated", iters, "times")
	fmt.Println("(home of the block on a third node, as in the paper's Figure 1)")
	fmt.Println()
	fmt.Printf("default protocol    : %4.1f msgs/iter, %6.1f us/iter\n", defMsgs, defTime)
	fmt.Printf("compiler-directed   : %4.1f msgs/iter, %6.1f us/iter\n", ccMsgs, ccTime)
	fmt.Printf("reduction           : %.1fx fewer messages, %.1fx faster\n",
		defMsgs/ccMsgs, defTime/ccTime)
}

// build creates a 3-node cluster with one shared page homed on node 2.
func build() (*tempest.Cluster, *protocol.Proto, int) {
	mc := config.Default().WithNodes(3)
	sp := memory.NewSpace(mc)
	base := sp.Alloc("x", 4*mc.PageSize)
	c := tempest.NewCluster(sim.NewEnv(), sp)
	pr := protocol.Attach(c)
	return c, pr, base + 2*mc.PageSize // page homed at node 2
}

func defaultProtocol() (msgsPerIter, usPerIter float64) {
	c, _, addr := build()
	var start, end sim.Time
	var m0 int64

	c.Env.Spawn("producer", func(p *sim.Proc) {
		n := c.Nodes[0]
		n.StoreF64(p, addr, -1) // warm up: take initial ownership
		c.Barrier(p, n)
		start, m0 = p.Now(), c.Stats.TotalMessages()
		for i := 0; i < iters; i++ {
			n.StoreF64(p, addr, float64(i))
			c.Barrier(p, n)
			c.Barrier(p, n)
		}
		end = p.Now()
	})
	c.Env.Spawn("consumer", func(p *sim.Proc) {
		n := c.Nodes[1]
		c.Barrier(p, n)
		for i := 0; i < iters; i++ {
			c.Barrier(p, n)
			if got := n.LoadF64(p, addr); got != float64(i) {
				panic("stale value through the default protocol")
			}
			c.Barrier(p, n)
		}
	})
	c.Env.Spawn("home", func(p *sim.Proc) {
		n := c.Nodes[2]
		for i := 0; i < 2*iters+1; i++ {
			c.Barrier(p, n)
		}
	})
	if err := c.Env.Run(); err != nil {
		panic(err)
	}
	barrier := int64(2*iters) * 4 // 2 arrives + 2 releases per 3-node barrier
	return float64(c.Stats.TotalMessages()-m0-barrier) / float64(iters),
		float64(end-start) / 1000 / float64(iters)
}

func compilerDirected() (msgsPerIter, usPerIter float64) {
	c, pr, addr := build()
	run := []protocol.BlockRun{{Start: addr / c.MC.BlockSize, N: 1}}
	var start, end sim.Time
	var m0 int64

	c.Env.Spawn("producer", func(p *sim.Proc) {
		n := c.Nodes[0]
		x := pr.Node(0)
		x.MkWritable(p, run) // step 1: owner takes the block writable
		c.Barrier(p, n)      // order step 1 before step 2
		c.Barrier(p, n)      // both sides ready
		start, m0 = p.Now(), c.Stats.TotalMessages()
		for i := 0; i < iters; i++ {
			n.StoreF64(p, addr, float64(i))
			x.SendBlocks(p, 1, run, protocol.SendBulk)
			c.Barrier(p, n)
		}
		end = p.Now()
	})
	c.Env.Spawn("consumer", func(p *sim.Proc) {
		n := c.Nodes[1]
		x := pr.Node(1)
		c.Barrier(p, n)
		x.ImplicitWritable(p, run, true) // step 2: open the frame
		c.Barrier(p, n)
		for i := 0; i < iters; i++ {
			x.ExpectBlocks(1)
			x.ReadyToRecv(p)
			if got := n.Mem.ReadF64(addr); got != float64(i) {
				panic("stale value through the compiler-directed transfer")
			}
			c.Barrier(p, n)
		}
		x.ImplicitInvalidate(p, run) // restore directory consistency
	})
	c.Env.Spawn("home", func(p *sim.Proc) {
		n := c.Nodes[2]
		for i := 0; i < iters+2; i++ {
			c.Barrier(p, n)
		}
	})
	if err := c.Env.Run(); err != nil {
		panic(err)
	}
	barrier := int64(iters) * 4
	return float64(c.Stats.TotalMessages()-m0-barrier) / float64(iters),
		float64(end-start) / 1000 / float64(iters)
}
