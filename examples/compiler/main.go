// Compiler: inspect what the communication analysis derives for a
// program — the owner-computes partition, the non-owner-read sets, the
// producer->consumer schedules, and the block-aligned shmem_limits
// shrink — without running anything.
//
//	go run ./examples/compiler
package main

import (
	"fmt"
	"log"

	"hpfdsm"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/ir"
	"hpfdsm/internal/sections"
)

const source = `
PROGRAM demo
PARAM n = 64
REAL a(n, n), b(n, n)
DISTRIBUTE a(*, BLOCK)
DISTRIBUTE b(*, BLOCK)
FORALL (i = 2:n-1, j = 2:n-1)
  b(i, j) = 0.25 * (a(i-1, j) + a(i+1, j) + a(i, j-1) + a(i, j+1))
END FORALL
END
`

func main() {
	prog, err := hpfdsm.Compile(source, nil)
	if err != nil {
		log.Fatal(err)
	}

	const np, blockSize = 8, 128
	layouts := map[*ir.Array]sections.Layout{}
	base := 0
	for _, arr := range prog.Arrays {
		layouts[arr] = sections.Layout{Base: base, Extents: arr.Extents, ElemSize: 8}
		base += (arr.Elems()*8 + 4095) / 4096 * 4096
	}
	an, err := compiler.New(prog, np, layouts, blockSize)
	if err != nil {
		log.Fatal(err)
	}

	loop := prog.Body[0].(*ir.ParLoop)
	rule := an.LoopRuleOf(loop)
	env := map[string]int{"N": 64}

	fmt.Printf("loop %s: anchor %v, owner-computes on %q\n\n", loop.Label, rule.Anchor, rule.DistVar)

	fmt.Println("work partition (columns of the distributed dimension per processor):")
	pt := an.Partition(loop, rule, env)
	for p := 0; p < np; p++ {
		fmt.Printf("  proc %d executes j in %v\n", p, pt.Ranges[p])
	}

	fmt.Println("\nnon-owner-read rules:")
	for _, rr := range rule.Reads {
		fmt.Printf("  %v: kind %v (last subscript = %s%+d)\n", rr.Ref, rr.Kind, rr.SweepVar, rr.Rest.Const)
	}

	fmt.Println("\ninstantiated schedule (sender -> receiver, block-aligned interior):")
	for _, t := range an.Schedule(loop, rule, env).Reads {
		fmt.Printf("  %v\n", t)
	}
	fmt.Println("\nedge bytes stay with the default protocol — the paper's")
	fmt.Println("shmem_limits rule for multi-word coherence blocks.")
}
