// Stencil: run the paper's shallow-water benchmark across all
// optimization levels and both CPU configurations, printing the
// Figure 3 / Figure 4-style comparison for one application.
//
//	go run ./examples/stencil
package main

import (
	"flag"
	"fmt"
	"log"

	"hpfdsm"
)

func main() {
	iters := flag.Int("iters", 0, "override the iteration count (0 = the app's scaled default)")
	flag.Parse()

	app, err := hpfdsm.AppByName("shallow")
	if err != nil {
		log.Fatal(err)
	}
	// Copy before overriding: ScaledParams is shared app state.
	params := map[string]int{}
	for k, v := range app.ScaledParams {
		params[k] = v
	}
	if *iters > 0 {
		params["ITERS"] = *iters
	}

	run := func(mode hpfdsm.CPUMode, opt hpfdsm.OptLevel) *hpfdsm.Result {
		prog, err := app.Program(params)
		if err != nil {
			log.Fatal(err)
		}
		mc := hpfdsm.DefaultMachine().WithCPUMode(mode)
		res, err := hpfdsm.Run(prog, hpfdsm.Options{Machine: mc, Opt: opt})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("shallow water %dx%d, %d iterations, 8 nodes\n\n",
		params["N1"], params["N2"], params["ITERS"])
	fmt.Printf("%-12s %-10s %12s %14s %12s\n", "cpu mode", "opt", "elapsed", "misses/node", "comm avg")
	for _, mode := range []hpfdsm.CPUMode{hpfdsm.SingleCPU, hpfdsm.DualCPU} {
		for _, opt := range []hpfdsm.OptLevel{hpfdsm.OptNone, hpfdsm.OptBase, hpfdsm.OptBulk, hpfdsm.OptRTElim} {
			res := run(mode, opt)
			fmt.Printf("%-12v %-10v %10.2fms %14.1f %10.2fms\n",
				mode, opt, float64(res.Elapsed)/1e6,
				res.Stats.AvgMissesPerNode(), float64(res.Stats.AvgCommTime())/1e6)
		}
	}

	unopt := run(hpfdsm.DualCPU, hpfdsm.OptNone)
	opt := run(hpfdsm.DualCPU, hpfdsm.OptRTElim)
	fmt.Printf("\ncompiler-directed coherence cut execution time by %.1f%% and misses by %.1f%%\n",
		100*(1-float64(opt.Elapsed)/float64(unopt.Elapsed)),
		100*(1-opt.Stats.AvgMissesPerNode()/unopt.Stats.AvgMissesPerNode()))
}
