// Quickstart: compile a mini-HPF program and run it on the simulated
// fine-grain DSM cluster, once through the plain coherence protocol
// and once with the compiler-directed optimizations, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"

	"hpfdsm"
)

const source = `
PROGRAM heat
PARAM n = 256
PARAM iters = 20
REAL t(n, n), tnew(n, n)
DISTRIBUTE t(*, BLOCK)
DISTRIBUTE tnew(*, BLOCK)

FORALL (i = 1:n, j = 1:n)
  t(i, j) = 0
  tnew(i, j) = 0
END FORALL
FORALL (i = 1:n, j = 1:1)
  t(i, j) = 100        ! hot west wall
END FORALL

STARTTIMER

DO step = 1, iters
  FORALL (i = 2:n-1, j = 2:n-1)
    tnew(i, j) = 0.25 * (t(i-1, j) + t(i+1, j) + t(i, j-1) + t(i, j+1))
  END FORALL
  FORALL (i = 2:n-1, j = 2:n-1)
    t(i, j) = tnew(i, j)
  END FORALL
END DO
END
`

func main() {
	n := flag.Int("n", 256, "grid size")
	iters := flag.Int("iters", 20, "time steps")
	flag.Parse()
	overrides := map[string]int{"N": *n, "ITERS": *iters}

	for _, opt := range []hpfdsm.OptLevel{hpfdsm.OptNone, hpfdsm.OptRTElim} {
		// Recompile per run: a Program is bound to one run's layouts.
		prog, err := hpfdsm.Compile(source, overrides)
		if err != nil {
			log.Fatal(err)
		}
		res, err := hpfdsm.Run(prog, hpfdsm.Options{
			Machine: hpfdsm.DefaultMachine(),
			Opt:     opt,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("opt=%-7v elapsed %7.2f ms   misses/node %7.1f   messages %6d\n",
			opt, float64(res.Elapsed)/1e6, res.Stats.AvgMissesPerNode(), res.Stats.TotalMessages())
	}

	// Read a result value back from the distributed array.
	res, err := hpfdsm.Run(mustCompile(overrides), hpfdsm.Options{Machine: hpfdsm.DefaultMachine(), Opt: hpfdsm.OptRTElim})
	if err != nil {
		log.Fatal(err)
	}
	t := res.ArrayData("T")
	fmt.Printf("temperature at (2,2) after %d steps: %.3f\n", *iters, t[(2-1)**n+(2-1)])
}

func mustCompile(overrides map[string]int) *hpfdsm.Program {
	p, err := hpfdsm.Compile(source, overrides)
	if err != nil {
		log.Fatal(err)
	}
	return p
}
