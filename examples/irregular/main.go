// Irregular: the paper's future-work benchmark class — a program
// mixing affine and indirect array subscripts. Shared memory runs it
// (and still optimizes the affine part); the message-passing backend
// must reject it. This is the paper's versatility argument made
// executable: "the simpler shared-memory approach lets a wider class
// of HPF programs run".
//
//	go run ./examples/irregular
package main

import (
	"flag"
	"fmt"
	"log"

	"hpfdsm"
)

const source = `
PROGRAM meshsmooth
PARAM n = 2048
PARAM iters = 10
REAL v(n), x(n), edge1(n), edge2(n)
DISTRIBUTE v(BLOCK)
DISTRIBUTE x(BLOCK)
DISTRIBUTE edge1(BLOCK)
DISTRIBUTE edge2(BLOCK)

FORALL (i = 1:n)
  edge1(i) = 1 + MOD(97 * i, n)      ! unstructured partners
  edge2(i) = 1 + MOD(389 * i + 7, n)
  v(i) = SIN(0.01 * i)
  x(i) = 0
END FORALL

STARTTIMER

DO t = 1, iters
  FORALL (i = 2:n-1)
    x(i) = 0.5 * v(i) + 0.2 * (v(i-1) + v(i+1)) + 0.05 * (v(edge1(i)) + v(edge2(i)))
  END FORALL
  FORALL (i = 2:n-1)
    v(i) = x(i)
  END FORALL
END DO
END
`

func main() {
	n := flag.Int("n", 2048, "mesh size")
	iters := flag.Int("iters", 10, "smoothing steps")
	flag.Parse()
	overrides := map[string]int{"N": *n, "ITERS": *iters}

	// Shared memory: runs, at any optimization level.
	for _, opt := range []hpfdsm.OptLevel{hpfdsm.OptNone, hpfdsm.OptRTElim} {
		res, err := hpfdsm.RunSource(source, overrides, hpfdsm.Options{
			Machine: hpfdsm.DefaultMachine(),
			Opt:     opt,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shared memory opt=%-7v : %8.2f ms, %6.1f misses/node\n",
			opt, float64(res.Elapsed)/1e6, res.Stats.AvgMissesPerNode())
	}

	// Message passing: statically rejected.
	_, err := hpfdsm.RunSource(source, overrides, hpfdsm.Options{
		Machine: hpfdsm.DefaultMachine(),
		Backend: hpfdsm.MessagePassing,
	})
	if err == nil {
		log.Fatal("message passing unexpectedly accepted an irregular program")
	}
	fmt.Printf("message passing          : %v\n", err)
}
